"""The image-decoder mirror (paper Figure 4).

Pipeline:  parser -> DataReader -> Huffman decoding unit (4-way) ->
iDCT & RGB (1 unit) -> resizer (2-way) -> DMA -> FINISH arbiter.

Two fidelity levels share this control path:

* **modeled** — commands carry size metadata only; stages charge the
  calibrated service times.  Used by the large experiments.
* **functional** — commands carry real JPEG bytes; the Huffman/iDCT/
  resize stages run the corresponding :mod:`repro.jpeg` code and the
  DMA stage writes real pixels into the host hugepage unit.  Timing is
  still the calibrated model, so both modes behave identically in
  simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..calib import Testbed
from ..jpeg import (JpegDecodeError, coefficients_to_planes, entropy_decode,
                    parse_jpeg, planes_to_image, resize_bilinear)
from ..jpeg.cache import decode_cache
from ..sim import Channel, Counter, Environment
from ..storage.nvme import NvmeReadError
from ..tracing.context import mark_cmd
from .device import FpgaDevice
from .units import PipelineUnit

__all__ = ["DecodeCmd", "FinishRecord", "ImageDecoderMirror"]

# Approximate logic cost (in CLB units) of each stage instance on the
# Arria 10; chosen so the paper's 4-way Huffman + 2-way resizer
# configuration fits the board but 5-way/3-way does not (S3.3's
# "hardware constraints").
CLB_COSTS = {
    "parser": 10_000,
    "datareader": 14_000,
    "mmu": 8_000,
    "huffman": 46_000,
    "idct": 64_000,
    "resizer": 52_000,
    "dma": 12_000,
}


@dataclass
class DecodeCmd:
    """One decode command, as pushed through the FPGA FIFO queue.

    The host bridger encapsulates the file metadata and the *physical*
    destination address (+ offset within the batch unit) — Algorithm 1
    line 12.
    """

    cmd_id: int
    source: str                     # "disk" | "dram"
    size_bytes: int
    work_pixels: int                # decode work incl. chroma
    out_h: int
    out_w: int
    channels: int
    dest_phy: int
    dest_offset: int
    batch_tag: object = None        # opaque host-side batch identity
    payload: Optional[bytes] = field(default=None, repr=False)
    poisoned: bool = False          # fault injection: corrupt source bytes
    error: Optional[str] = None     # first stage failure, sticky
    # Causal trace context (repro.tracing): the originating request's
    # trace, plus the attempt epoch it was stamped with — a retried cmd's
    # ghost predecessor fails the epoch check and stops marking.
    trace: object = field(default=None, repr=False)
    trace_attempt: int = 0
    # Stage intermediates (functional mode).
    _parsed: object = field(default=None, repr=False)
    _coeffs: object = field(default=None, repr=False)
    _image: object = field(default=None, repr=False)
    result: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def out_bytes(self) -> int:
        return self.out_h * self.out_w * self.channels

    @property
    def out_pixels(self) -> int:
        return self.out_h * self.out_w


@dataclass(frozen=True)
class FinishRecord:
    """The FINISH signal raised after the DMA write (Fig. 4).

    ``status == "error"`` means the cmd traversed the pipeline but
    produced no pixels (poison input, device read failure); the record
    still surfaces so the host can account for the slot instead of
    waiting forever.
    """

    cmd_id: int
    batch_tag: object
    dest_phy: int
    dest_offset: int
    out_bytes: int
    finished_at: float
    status: str = "ok"
    error: Optional[str] = None


class ImageDecoderMirror:
    """The JPEG decode+resize mirror, pluggable into :class:`FpgaDevice`."""

    def __init__(self, env: Environment, testbed: Testbed,
                 huffman_ways: Optional[int] = None,
                 resizer_ways: Optional[int] = None,
                 functional: bool = False,
                 host_pool=None,
                 disk=None,
                 name: str = "image-decoder",
                 injector=None,
                 site: Optional[str] = None):
        self.env = env
        self.testbed = testbed
        self.name = name
        self.functional = functional
        self.host_pool = host_pool    # MemManager for functional DMA writes
        self.disk = disk              # NvmeDisk for source == "disk"
        self.injector = injector
        self.site = site if site is not None else name
        self.device: Optional[FpgaDevice] = None
        hw = huffman_ways if huffman_ways is not None \
            else testbed.fpga_huffman_ways
        rw = resizer_ways if resizer_ways is not None \
            else testbed.fpga_resizer_ways

        depth = testbed.fpga_queue_depth
        self.cmd_queue = Channel(env, capacity=depth, name=f"{name}.fifo")
        self._fetch_q = Channel(env, capacity=depth, name=f"{name}.fetch")
        self._huff_q = Channel(env, capacity=depth, name=f"{name}.huff")
        self._idct_q = Channel(env, capacity=depth, name=f"{name}.idct")
        self._resize_q = Channel(env, capacity=depth, name=f"{name}.resize")
        self._dma_q = Channel(env, capacity=depth, name=f"{name}.dma")
        self.finish_queue = Channel(env, capacity=float("inf"),
                                    name=f"{name}.finish")
        self.decoded = Counter(env, name=f"{name}.decoded")
        self.decode_errors = Counter(env, name=f"{name}.errors")

        tb = testbed
        self.parser = PipelineUnit(
            env, f"{name}.parser", ways=1,
            service_time=lambda cmd: tb.fpga_cmd_overhead_s,
            inbox=self.cmd_queue, outbox=self._fetch_q,
            clb_cost_per_way=CLB_COSTS["parser"])
        self.huffman = PipelineUnit(
            env, f"{name}.huffman", ways=hw,
            service_time=lambda cmd: cmd.size_bytes / tb.fpga_huffman_byte_rate,
            inbox=self._huff_q, outbox=self._idct_q,
            transform=self._huffman_fn,
            clb_cost_per_way=CLB_COSTS["huffman"])
        self.idct = PipelineUnit(
            env, f"{name}.idct", ways=1,
            service_time=lambda cmd: cmd.work_pixels / tb.fpga_idct_pixel_rate,
            inbox=self._idct_q, outbox=self._resize_q,
            transform=self._idct_fn,
            clb_cost_per_way=CLB_COSTS["idct"])
        self.resizer = PipelineUnit(
            env, f"{name}.resizer", ways=rw,
            # Output-driven decimating resizer: line buffers stream the
            # decoded rows through, so cost scales with *output* pixels.
            service_time=lambda cmd: (
                cmd.out_pixels / tb.fpga_resizer_pixel_rate),
            inbox=self._resize_q, outbox=self._dma_q,
            transform=self._resize_fn,
            clb_cost_per_way=CLB_COSTS["resizer"])
        self._units = [self.parser, self.huffman, self.idct, self.resizer]
        self._started = False

    # -- fidelity-dependent stage bodies ---------------------------------
    def _huffman_fn(self, cmd: DecodeCmd) -> DecodeCmd:
        if cmd.error is not None:
            return cmd
        if self.functional and cmd.payload is not None:
            # Content-addressed cache: key is the payload *bytes* (plus
            # output geometry), so poisoned/corrupted streams can never
            # alias a clean entry.  A hit carries the finished pixels
            # (or the recorded decode error) straight to the DMA stage;
            # the idct/resize transforms see no intermediates and pass
            # through.  Timing is unaffected either way — transforms run
            # in zero simulated time; only real wall-clock is saved.
            hit = decode_cache.lookup(cmd.payload,
                                      ("mirror", cmd.out_h, cmd.out_w))
            if hit is not None:
                result, error = hit[0]
                cmd.result, cmd.error = result, error
                return cmd
            try:
                cmd._parsed = parse_jpeg(cmd.payload)
                cmd._coeffs = entropy_decode(cmd._parsed)
            except JpegDecodeError as exc:
                cmd.error = f"{type(exc).__name__}: {exc}"
                cmd._parsed = cmd._coeffs = None
                decode_cache.insert(cmd.payload,
                                    ("mirror", cmd.out_h, cmd.out_w),
                                    (None, cmd.error))
        elif cmd.poisoned:
            # Modeled mode: no real bytes to choke on, so the poison flag
            # stands in for the parse failure the hardware would hit.
            cmd.error = "BadHuffmanCodeError: poisoned source (modeled)"
        return cmd

    def _idct_fn(self, cmd: DecodeCmd) -> DecodeCmd:
        if cmd.error is None and self.functional and cmd._parsed is not None:
            planes = coefficients_to_planes(cmd._parsed, cmd._coeffs)
            cmd._image = planes_to_image(cmd._parsed, planes)
            cmd._coeffs = None
        return cmd

    def _resize_fn(self, cmd: DecodeCmd) -> DecodeCmd:
        if cmd.error is None and self.functional and cmd._image is not None:
            result = resize_bilinear(cmd._image, cmd.out_h, cmd.out_w)
            result.setflags(write=False)    # cache entries are shared
            cmd.result = result
            cmd._image = None
            cmd._parsed = None
            if cmd.payload is not None:
                decode_cache.insert(cmd.payload,
                                    ("mirror", cmd.out_h, cmd.out_w),
                                    (result, None))
        return cmd

    # -- device binding ----------------------------------------------------
    def clb_cost(self) -> int:
        return sum(u.clb_cost for u in self._units) + \
            CLB_COSTS["datareader"] + CLB_COSTS["mmu"] + CLB_COSTS["dma"]

    def bind(self, device: FpgaDevice) -> None:
        self.device = device
        self.start()

    def shutdown(self) -> None:
        # Processes die with the environment; nothing persistent to undo.
        self.device = None

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for unit in self._units:
            unit.start()
        self.env.process(self._datareader_loop(), name=f"{self.name}.reader")
        self.env.process(self._dma_loop(), name=f"{self.name}.dmaw")

    # -- custom stages (need to await shared devices) ---------------------
    def _datareader_loop(self):
        """Fetch source bytes from NVMe or host DRAM (Fig. 4 DataReader)."""
        tb = self.testbed
        while True:
            cmd: DecodeCmd = yield from self._fetch_q.get()
            mark_cmd(cmd, "fpga.fetch", "service")
            if cmd.source == "disk":
                if self.disk is not None:
                    try:
                        yield from self.disk.read(cmd.size_bytes)
                    except NvmeReadError as exc:
                        # Forward the cmd anyway: the host learns of the
                        # failure from the error FINISH record, not a hang.
                        cmd.error = f"NvmeReadError: {exc}"
                else:
                    yield self.env.timeout(
                        cmd.size_bytes / tb.nvme_read_rate)
            elif cmd.source == "dram":
                # DMA read from host memory (data landed there via NIC).
                yield self.env.timeout(cmd.size_bytes / tb.fpga_dma_rate)
            else:
                raise ValueError(f"unknown source {cmd.source!r}")
            mark_cmd(cmd, "fpga.queue", "wait")
            yield from self._huff_q.put(cmd)

    def _dma_loop(self):
        """Write results to host hugepages, then raise FINISH."""
        while True:
            cmd: DecodeCmd = yield from self._dma_q.get()
            mark_cmd(cmd, "fpga.dma", "service")
            if cmd.error is not None:
                # No pixels to move; raise an error FINISH immediately so
                # the host can release the slot.
                self.decode_errors.add()
                record = FinishRecord(
                    cmd_id=cmd.cmd_id, batch_tag=cmd.batch_tag,
                    dest_phy=cmd.dest_phy, dest_offset=cmd.dest_offset,
                    out_bytes=0, finished_at=self.env.now,
                    status="error", error=cmd.error)
                yield from self.finish_queue.put(record)
                continue
            if self.device is not None:
                yield from self.device.dma_write(cmd.out_bytes)
            else:
                yield self.env.timeout(
                    cmd.out_bytes / self.testbed.fpga_dma_rate)
            if self.functional and cmd.result is not None \
                    and self.host_pool is not None:
                unit = self.host_pool.unit_by_phy(cmd.dest_phy)
                unit.write(cmd.dest_offset, cmd.result)
            if self.injector is not None:
                stall = self.injector.finish_stall_s(self.site)
                if stall > 0.0:
                    yield self.env.timeout(stall)
            self.decoded.add()
            record = FinishRecord(
                cmd_id=cmd.cmd_id, batch_tag=cmd.batch_tag,
                dest_phy=cmd.dest_phy, dest_offset=cmd.dest_offset,
                out_bytes=cmd.out_bytes, finished_at=self.env.now)
            yield from self.finish_queue.put(record)

    # -- analysis ------------------------------------------------------------
    def stage_utilizations(self) -> dict[str, float]:
        return {u.name.rsplit(".", 1)[-1]: u.utilization()
                for u in self._units}

    def bottleneck(self) -> str:
        utils = self.stage_utilizations()
        return max(utils, key=utils.get)

    def throughput_bound(self, size_bytes: int, work_pixels: int,
                         out_pixels: int) -> float:
        """Analytic steady-state images/s bound for a given image shape."""
        tb = self.testbed
        stage_rates = [
            self.huffman.ways * tb.fpga_huffman_byte_rate / size_bytes,
            tb.fpga_idct_pixel_rate / work_pixels,
            self.resizer.ways * tb.fpga_resizer_pixel_rate / out_pixels,
            1.0 / tb.fpga_cmd_overhead_s,
        ]
        return min(stage_rates)
