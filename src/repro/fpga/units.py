"""Generic FPGA pipeline-unit framework.

The paper's decoder (Fig. 4) is a chain of units — parser, DataReader,
Huffman decoder, iDCT, resizer, DMA — each replicated across a
configurable number of "ways" mapped onto CLBs, "which allows each of
them to work in pipelining and increases the parallelism" (S3.3).

:class:`PipelineUnit` models one such stage: ``ways`` parallel servers
pulling work items from an input channel, holding them for a
per-item service time, optionally transforming the payload
(functional mode), and pushing downstream.  Multi-way output is
collected round-robin-fairly simply by sharing one output channel, as
the hardware's "multiplex streams collector (round-robin)" does.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..sim import BusyTracker, Channel, Counter, Environment
from ..sim.trace import Tracer
from ..tracing.context import mark_cmd

__all__ = ["PipelineUnit", "UnitStats"]


class UnitStats:
    """Aggregated per-unit measurements for load-balance analysis."""

    def __init__(self, env: Environment, name: str, ways: int):
        self.busy = BusyTracker(env, name=f"{name}.busy")
        self.items = Counter(env, name=f"{name}.items")
        self.per_way_items = [0] * ways

    def utilization(self, ways: int) -> float:
        """Mean busy fraction per way (1.0 = the unit is the bottleneck)."""
        return self.busy.cores() / ways if ways else 0.0


class PipelineUnit:
    """One stage of the decoder pipeline with N parallel ways."""

    def __init__(self, env: Environment, name: str, ways: int,
                 service_time: Callable[[Any], float],
                 inbox: Channel, outbox: Optional[Channel],
                 transform: Optional[Callable[[Any], Any]] = None,
                 clb_cost_per_way: int = 0,
                 tracer: Optional[Tracer] = None):
        if ways < 1:
            raise ValueError(f"{name}: ways must be >= 1")
        self.env = env
        self.name = name
        self.ways = ways
        self.service_time = service_time
        self.inbox = inbox
        self.outbox = outbox
        self.transform = transform
        self.clb_cost_per_way = clb_cost_per_way
        self.tracer = tracer
        self.stats = UnitStats(env, name, ways)
        # Request-trace stage label, e.g. "image-decoder.huffman" ->
        # "fpga.huffman" (stable across decoder instances).
        self._trace_stage = "fpga." + name.rsplit(".", 1)[-1]
        self._running = False

    @property
    def clb_cost(self) -> int:
        return self.clb_cost_per_way * self.ways

    def start(self) -> None:
        if self._running:
            raise RuntimeError(f"{self.name} already started")
        self._running = True
        for way in range(self.ways):
            self.env.process(self._way_loop(way), name=f"{self.name}[{way}]")

    def _way_loop(self, way: int):
        while True:
            item = yield from self.inbox.get()
            mark_cmd(item, self._trace_stage, "service")
            duration = self.service_time(item)
            if duration < 0:
                raise ValueError(f"{self.name}: negative service time")
            tok = self.stats.busy.begin(self.name)
            trace_tok = (self.tracer.begin("service", f"{self.name}[{way}]")
                         if self.tracer else None)
            yield self.env.timeout(duration)
            if trace_tok is not None:
                self.tracer.end(trace_tok)
            self.stats.busy.end(tok)
            self.stats.items.add()
            self.stats.per_way_items[way] += 1
            if self.transform is not None:
                item = self.transform(item)
            if self.outbox is not None:
                mark_cmd(item, "fpga.queue", "wait")
                yield from self.outbox.put(item)

    def utilization(self) -> float:
        return self.stats.utilization(self.ways)

    def way_imbalance(self) -> float:
        """max/mean per-way item count; ~1.0 means balanced ways."""
        counts = self.stats.per_way_items
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean else 0.0
