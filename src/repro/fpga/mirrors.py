"""Pluggable decoder mirrors and their registry.

"The decoder in FPGA is pluggable, which allows users to download
relevant preprocessing mirrors to FPGA devices for different
applications (e.g., language models, video models and speech models)"
(S3.1).  The registry maps a mirror name to a factory; besides the image
decoder we ship an audio spectrogram mirror (the paper's speech example:
"audio samples undergo a discrete cosine transform to obtain the spectra
data", S2.1) and a text-quantization mirror ("text samples ... are
quantized to obtain the vectorized features").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..calib import Testbed
from ..sim import Channel, Counter, Environment
from .decoder import CLB_COSTS, FinishRecord, ImageDecoderMirror
from .units import PipelineUnit

__all__ = ["MIRROR_REGISTRY", "register_mirror", "create_mirror",
           "AudioCmd", "AudioSpectrogramMirror", "TextCmd",
           "TextQuantizerMirror"]

MIRROR_REGISTRY: dict[str, Callable] = {}


def register_mirror(name: str, factory: Callable) -> None:
    """Register a mirror factory under ``name`` (overwrites allowed)."""
    if not callable(factory):
        raise TypeError("factory must be callable")
    MIRROR_REGISTRY[name] = factory


def create_mirror(name: str, env: Environment, testbed: Testbed,
                  **kwargs):
    """Instantiate a registered mirror by name (the 'download' step)."""
    try:
        factory = MIRROR_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"no mirror {name!r}; available: {sorted(MIRROR_REGISTRY)}"
        ) from None
    return factory(env, testbed, **kwargs)


# --------------------------------------------------------------- audio
@dataclass
class AudioCmd:
    """Decode command for the audio mirror: PCM frames -> spectrogram."""

    cmd_id: int
    num_samples: int
    frame_size: int
    dest_phy: int
    dest_offset: int
    batch_tag: object = None
    samples: Optional[np.ndarray] = field(default=None, repr=False)
    result: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def num_frames(self) -> int:
        return max(1, self.num_samples // self.frame_size)

    @property
    def out_bytes(self) -> int:
        return self.num_frames * self.frame_size * 4  # float32 spectra


class AudioSpectrogramMirror:
    """framer -> windowed DCT unit (2-way) -> log-power -> FINISH."""

    def __init__(self, env: Environment, testbed: Testbed,
                 dct_ways: int = 2, functional: bool = False,
                 name: str = "audio-spectrogram"):
        self.env = env
        self.testbed = testbed
        self.name = name
        self.functional = functional
        self.device = None
        depth = testbed.fpga_queue_depth
        self.cmd_queue = Channel(env, capacity=depth, name=f"{name}.fifo")
        self._dct_q = Channel(env, capacity=depth, name=f"{name}.dct")
        self._power_q = Channel(env, capacity=depth, name=f"{name}.pow")
        self.finish_queue = Channel(env, capacity=float("inf"),
                                    name=f"{name}.finish")
        self.decoded = Counter(env, name=f"{name}.decoded")

        samples_rate = 2.0e9  # framing is cheap
        dct_rate = 0.8e9      # transformed samples/s per way

        self.framer = PipelineUnit(
            env, f"{name}.framer", ways=1,
            service_time=lambda c: c.num_samples / samples_rate,
            inbox=self.cmd_queue, outbox=self._dct_q,
            clb_cost_per_way=CLB_COSTS["parser"])
        self.dct = PipelineUnit(
            env, f"{name}.dct", ways=dct_ways,
            service_time=lambda c: (
                c.num_frames * c.frame_size * np.log2(max(c.frame_size, 2))
                / dct_rate),
            inbox=self._dct_q, outbox=self._power_q,
            transform=self._dct_fn,
            clb_cost_per_way=CLB_COSTS["idct"])
        self.power = PipelineUnit(
            env, f"{name}.power", ways=1,
            service_time=lambda c: c.num_frames * c.frame_size / samples_rate,
            inbox=self._power_q, outbox=self.finish_queue,
            transform=self._finish_fn,
            clb_cost_per_way=CLB_COSTS["resizer"])
        self._units = [self.framer, self.dct, self.power]

    def _dct_fn(self, cmd: AudioCmd) -> AudioCmd:
        if self.functional and cmd.samples is not None:
            from scipy.fft import dct as scipy_dct
            n = cmd.num_frames * cmd.frame_size
            frames = np.asarray(cmd.samples[:n], dtype=np.float64)
            frames = frames.reshape(cmd.num_frames, cmd.frame_size)
            window = np.hanning(cmd.frame_size)
            cmd.result = scipy_dct(frames * window, type=2, norm="ortho",
                                   axis=1)
        return cmd

    def _finish_fn(self, cmd: AudioCmd) -> FinishRecord:
        if self.functional and cmd.result is not None:
            cmd.result = np.log1p(np.abs(cmd.result)).astype(np.float32)
        self.decoded.add()
        record = FinishRecord(
            cmd_id=cmd.cmd_id, batch_tag=cmd.batch_tag,
            dest_phy=cmd.dest_phy, dest_offset=cmd.dest_offset,
            out_bytes=cmd.out_bytes, finished_at=self.env.now)
        record = (record, cmd.result) if self.functional else record
        return record

    def clb_cost(self) -> int:
        return sum(u.clb_cost for u in self._units) + CLB_COSTS["dma"]

    def bind(self, device) -> None:
        self.device = device
        self.start()

    def shutdown(self) -> None:
        self.device = None

    def start(self) -> None:
        for unit in self._units:
            if not unit._running:
                unit.start()


# ---------------------------------------------------------------- text
@dataclass
class TextCmd:
    cmd_id: int
    num_tokens: int
    embed_dim: int
    dest_phy: int
    dest_offset: int
    batch_tag: object = None

    @property
    def out_bytes(self) -> int:
        return self.num_tokens * self.embed_dim * 4


class TextQuantizerMirror:
    """tokenizer -> hash-embed lookup; the language-model mirror."""

    def __init__(self, env: Environment, testbed: Testbed,
                 lookup_ways: int = 2, name: str = "text-quantizer"):
        self.env = env
        self.testbed = testbed
        self.name = name
        self.device = None
        depth = testbed.fpga_queue_depth
        self.cmd_queue = Channel(env, capacity=depth, name=f"{name}.fifo")
        self._embed_q = Channel(env, capacity=depth, name=f"{name}.embed")
        self.finish_queue = Channel(env, capacity=float("inf"),
                                    name=f"{name}.finish")
        self.decoded = Counter(env, name=f"{name}.decoded")

        self.tokenizer = PipelineUnit(
            env, f"{name}.tok", ways=1,
            service_time=lambda c: c.num_tokens / 50e6,
            inbox=self.cmd_queue, outbox=self._embed_q,
            clb_cost_per_way=CLB_COSTS["parser"])
        self.embedder = PipelineUnit(
            env, f"{name}.embed", ways=lookup_ways,
            service_time=lambda c: c.num_tokens * c.embed_dim / 2e9,
            inbox=self._embed_q, outbox=self.finish_queue,
            transform=self._finish_fn,
            clb_cost_per_way=CLB_COSTS["huffman"])
        self._units = [self.tokenizer, self.embedder]

    def _finish_fn(self, cmd: TextCmd) -> FinishRecord:
        self.decoded.add()
        return FinishRecord(
            cmd_id=cmd.cmd_id, batch_tag=cmd.batch_tag,
            dest_phy=cmd.dest_phy, dest_offset=cmd.dest_offset,
            out_bytes=cmd.out_bytes, finished_at=self.env.now)

    def clb_cost(self) -> int:
        return sum(u.clb_cost for u in self._units) + CLB_COSTS["dma"]

    def bind(self, device) -> None:
        self.device = device
        self.start()

    def shutdown(self) -> None:
        self.device = None

    def start(self) -> None:
        for unit in self._units:
            if not unit._running:
                unit.start()


register_mirror("image-decoder", ImageDecoderMirror)
register_mirror("audio-spectrogram", AudioSpectrogramMirror)
register_mirror("text-quantizer", TextQuantizerMirror)
