"""Behavioural FPGA decoder model (paper Figure 4 + S3.3/S4.1)."""

from .channel import FPGAChannel, fpga_init
from .decoder import CLB_COSTS, DecodeCmd, FinishRecord, ImageDecoderMirror
from .device import ARRIA10_CLB_BUDGET, FpgaDevice, FpgaResourceError
from .mirrors import (MIRROR_REGISTRY, AudioCmd, AudioSpectrogramMirror,
                      TextCmd, TextQuantizerMirror, create_mirror,
                      register_mirror)
from .units import PipelineUnit

__all__ = ["FpgaDevice", "FpgaResourceError", "ARRIA10_CLB_BUDGET",
           "ImageDecoderMirror", "DecodeCmd", "FinishRecord", "CLB_COSTS",
           "FPGAChannel", "fpga_init", "PipelineUnit",
           "MIRROR_REGISTRY", "register_mirror", "create_mirror",
           "AudioCmd", "AudioSpectrogramMirror", "TextCmd",
           "TextQuantizerMirror"]
