"""FPGA device model: CLB budget, mirror loading, DMA engines.

The paper deploys its decoder on an Intel Arria 10 AX (S5.1) and makes
the decoder a *pluggable mirror*: "users [can] download relevant
preprocessing mirrors to FPGA devices for different applications"
(S3.1).  The device here enforces the board's logic budget when a
mirror is loaded — which is exactly the constraint that forces the
paper's 4-way-Huffman / 2-way-resizer balance (S3.3) — and owns the
DMA path to host hugepages.
"""

from __future__ import annotations

from typing import Optional

from ..calib import Testbed
from ..sim import BusyTracker, Environment, Resource

__all__ = ["FpgaDevice", "FpgaResourceError"]

# Intel Arria 10 AX 10AX115: ~427k ALMs. We expose a round logic budget
# in "CLB" units; mirror unit costs are expressed in the same units.
ARRIA10_CLB_BUDGET = 420_000


class FpgaResourceError(RuntimeError):
    """Mirror does not fit the device (CLB over-subscription)."""


class FpgaDevice:
    """One FPGA board: logic budget + DMA engine + loaded mirror slot."""

    def __init__(self, env: Environment, testbed: Testbed,
                 clb_budget: int = ARRIA10_CLB_BUDGET,
                 name: str = "fpga0"):
        self.env = env
        self.testbed = testbed
        self.name = name
        self.clb_budget = clb_budget
        self.mirror = None
        self._dma = Resource(env, capacity=1, name=f"{name}.dma")
        self.dma_busy = BusyTracker(env, name=f"{name}.dma")

    # -- mirror management (pluggable decoders, S3.1) --------------------
    def load_mirror(self, mirror) -> None:
        """Program the device with a decoder mirror; validates fit."""
        required = mirror.clb_cost()
        if required > self.clb_budget:
            raise FpgaResourceError(
                f"{mirror.name} needs {required} CLBs; {self.name} has "
                f"{self.clb_budget}")
        if self.mirror is not None:
            self.mirror.shutdown()
        self.mirror = mirror
        mirror.bind(self)

    @property
    def clb_used(self) -> int:
        return self.mirror.clb_cost() if self.mirror else 0

    @property
    def clb_free(self) -> int:
        return self.clb_budget - self.clb_used

    # -- DMA ---------------------------------------------------------------
    def dma_write(self, nbytes: int):
        """Generator: move ``nbytes`` decoder->host over the DMA engine."""
        if nbytes <= 0:
            raise ValueError(f"dma size must be positive, got {nbytes}")
        grant = self._dma.request()
        yield grant
        tok = self.dma_busy.begin("dma")
        try:
            yield self.env.timeout(nbytes / self.testbed.fpga_dma_rate)
        finally:
            self.dma_busy.end(tok)
            self._dma.release(grant)

    def dma_utilization(self) -> float:
        return self.dma_busy.cores("dma")
