"""Baseline JPEG decoder, staged to mirror the paper's FPGA pipeline.

Figure 4 of the paper decomposes the decoder into parser -> Huffman
decoding unit -> iDCT & RGB unit -> resizer.  This module exposes the
same stage boundaries:

* :func:`entropy_decode` — the Huffman stage; bitstream -> quantized
  zig-zag coefficient blocks per component.
* :func:`coefficients_to_planes` — the iDCT stage; dequantize + inverse
  DCT -> component pixel planes.
* :func:`planes_to_image` — chroma upsampling + YCbCr->RGB.
* :func:`decode` / :func:`decode_resized` — the fused full pipeline, the
  latter ending in the resizer unit like the FPGA decoder does.

The staged API is exactly what :mod:`repro.fpga` drives, so the hardware
model's functional output is bit-identical to this software path.
"""

from __future__ import annotations

import numpy as np

from .bitstream import BitReader, EndOfScan
from .color import _shifted_ycbcr_to_rgb, upsample_420
from .dct import idct2_dequant, idct2_dequant_scan
from .errors import (BadHuffmanCodeError, BadMarkerError,
                     TruncatedStreamError)
from .huffman import decode_block
from .jfif import JpegFormatError, ParsedJpeg, parse_jpeg
from .quant import zigzag_unflatten
from .resize import resize_bilinear

__all__ = ["entropy_decode", "coefficients_to_planes", "planes_to_image",
           "decode", "decode_resized"]


def entropy_decode(parsed: ParsedJpeg) -> list[np.ndarray]:
    """Huffman-decode the interleaved scan.

    Returns, per frame component, an int32 array of shape
    (blocks_h, blocks_w, 64) of quantized coefficients in zig-zag order —
    the exact output of the paper's 4-way Huffman decoding unit.
    """
    frame, scan = parsed.frame, parsed.scan
    order = {c.component_id: i for i, c in enumerate(frame.components)}
    ncomp = len(frame.components)
    mcus_x, mcus_y = frame.mcus_per_row, frame.mcu_rows

    out: list[np.ndarray] = []
    for comp in frame.components:
        out.append(np.zeros(
            (mcus_y * comp.v_samp, mcus_x * comp.h_samp, 64),
            dtype=np.int32))

    # Scan component order may differ from frame order; map via ids.
    scan_idx = [order[c.component_id] for c in scan.components]
    dc_tabs = []
    ac_tabs = []
    for c in scan.components:
        try:
            dc_tabs.append(parsed.dc_tables[c.dc_table_id])
            ac_tabs.append(parsed.ac_tables[c.ac_table_id])
        except KeyError as exc:
            raise JpegFormatError(f"missing Huffman table {exc}") from None

    reader = BitReader(parsed.data, parsed.scan_offset)
    pred = [0] * ncomp
    interval = parsed.restart_interval
    mcu_index = 0
    expected_rst = 0
    # One flat plan entry per block of an MCU, hoisted out of the MCU
    # loop: (component index, tables, block offsets within the MCU).
    plan = []
    for si, ci in enumerate(scan_idx):
        comp = frame.components[ci]
        for by in range(comp.v_samp):
            for bx in range(comp.h_samp):
                plan.append((ci, dc_tabs[si], ac_tabs[si], out[ci],
                             comp.v_samp, comp.h_samp, by, bx))
    for my in range(mcus_y):
        for mx in range(mcus_x):
            if interval and mcu_index and mcu_index % interval == 0:
                try:
                    n = reader.align_and_consume_rst()
                except EndOfScan as exc:
                    raise BadMarkerError(
                        f"restart boundary at MCU {mcu_index}: {exc}"
                    ) from None
                if n != expected_rst:
                    raise BadMarkerError(
                        f"restart marker out of order: RST{n}, "
                        f"expected RST{expected_rst}")
                expected_rst = (expected_rst + 1) % 8
                pred = [0] * ncomp
            try:
                for ci, dc_tab, ac_tab, plane, v, h, by, bx in plan:
                    # Decode straight into the (pre-zeroed) output row.
                    _, pred[ci] = decode_block(
                        reader, pred[ci], dc_tab, ac_tab,
                        plane[my * v + by, mx * h + bx])
            except EndOfScan as exc:
                raise TruncatedStreamError(
                    f"scan truncated in MCU {mcu_index}: {exc}"
                ) from None
            except JpegFormatError:
                raise
            except ValueError as exc:
                raise BadHuffmanCodeError(
                    f"corrupt scan in MCU {mcu_index}: {exc}"
                ) from None
            mcu_index += 1
    return out


def coefficients_to_planes(parsed: ParsedJpeg,
                           coeffs: list[np.ndarray]) -> list[np.ndarray]:
    """Dequantize + inverse-DCT coefficient blocks into pixel planes.

    Output planes are cropped to each component's true dimensions
    (sub-sampled for chroma), values in [0, 255] float64.

    The dequantize + inverse DCT runs once for the whole scan
    (:func:`idct2_dequant_scan` batches every component's blocks into a
    single stacked matmul pair) — bit-identical to the per-component
    :func:`idct2_dequant` calls it replaces.
    """
    frame = parsed.frame
    qtables = []
    for comp in frame.components:
        try:
            qtables.append(parsed.qtables[comp.qtable_id])
        except KeyError:
            raise JpegFormatError(
                f"missing quantization table {comp.qtable_id}") from None
    stacks = [zigzag_unflatten(zz) for zz in coeffs]     # (bh, bw, 8, 8)
    pix_stacks = idct2_dequant_scan(stacks, qtables)
    planes = []
    for comp, pix in zip(frame.components, pix_stacks):
        pix = pix + 128.0
        bh, bw = pix.shape[:2]
        plane = pix.transpose(0, 2, 1, 3).reshape(bh * 8, bw * 8)
        comp_h = -(-frame.height * comp.v_samp // frame.vmax)
        comp_w = -(-frame.width * comp.h_samp // frame.hmax)
        planes.append(np.clip(plane[:comp_h, :comp_w], 0.0, 255.0))
    return planes


def planes_to_image(parsed: ParsedJpeg,
                    planes: list[np.ndarray]) -> np.ndarray:
    """Upsample chroma and convert to uint8 RGB (or grayscale)."""
    frame = parsed.frame
    if len(planes) == 1:
        return np.clip(np.round(planes[0]), 0, 255).astype(np.uint8)
    if len(planes) != 3:
        raise JpegFormatError(f"unsupported component count {len(planes)}")
    h, w = frame.height, frame.width
    # Assemble the chroma-shifted YCbCr directly into one buffer: same
    # elementwise subtraction and matmul as stack + ycbcr_to_rgb, minus
    # a stack and a copy, so pixels stay bit-identical.
    shifted = np.empty((h, w, 3), dtype=np.float64)
    for i, (comp, plane) in enumerate(zip(frame.components, planes)):
        if plane.shape != (h, w):
            plane = upsample_420(plane, h, w)
        if i:
            np.subtract(plane, 128.0, out=shifted[..., i])
        else:
            shifted[..., 0] = plane
    return _shifted_ycbcr_to_rgb(shifted)


def decode(data: bytes) -> np.ndarray:
    """Full pipeline: JPEG bytes -> uint8 RGB (H, W, 3) or grayscale (H, W)."""
    parsed = parse_jpeg(data)
    coeffs = entropy_decode(parsed)
    planes = coefficients_to_planes(parsed, coeffs)
    return planes_to_image(parsed, planes)


def decode_resized(data: bytes, out_h: int, out_w: int) -> np.ndarray:
    """Decode then bilinear-resize — the fused decoder+resizer the paper
    offloads to the FPGA (decode and resize on device, augmentation on GPU).
    """
    return resize_bilinear(decode(data), out_h, out_w)
