"""Entropy-coded-segment bit I/O with JPEG byte stuffing.

Within a JPEG scan, any 0xFF data byte is followed by a stuffed 0x00 so
decoders can find markers by scanning for 0xFF. The reader treats
0xFF D0-D7 (RSTn) as segment boundaries and any other marker as
end-of-scan.

The reader refills its accumulator in bulk: whenever four plain bytes
(no 0xFF anywhere among them) are next in the buffer they are loaded in
one 32-bit gulp; only windows containing 0xFF — stuffing candidates or
markers — fall back to the byte-at-a-time path.  :meth:`BitReader.
ensure_bits` additionally offers a *non-consuming* best-effort refill
that stops cleanly at markers instead of raising, which is what the
table-driven Huffman fast path (:meth:`repro.jpeg.huffman.HuffmanTable.
decode`) peeks through.
"""

from __future__ import annotations

__all__ = ["BitWriter", "BitReader", "EndOfScan"]

# value & _MASK[n] == low n bits; sized for the deepest accumulator the
# reader can hold (31 buffered bits + a 32-bit bulk refill).
_MASK = tuple((1 << n) - 1 for n in range(64))


class EndOfScan(Exception):
    """Reader hit a non-RST marker (or ran out of bytes) mid-read."""


class BitWriter:
    """MSB-first bit accumulator emitting a stuffed entropy-coded segment."""

    def __init__(self) -> None:
        self._out = bytearray()
        self._acc = 0
        self._nbits = 0

    def write(self, value: int, nbits: int) -> None:
        """Append the low ``nbits`` of ``value``, MSB first."""
        if nbits < 0 or nbits > 24:
            raise ValueError(f"nbits out of range: {nbits}")
        if nbits == 0:
            return
        if value < 0 or value >= (1 << nbits):
            raise ValueError(f"value {value} does not fit in {nbits} bits")
        self._acc = (self._acc << nbits) | value
        self._nbits += nbits
        while self._nbits >= 8:
            self._nbits -= 8
            byte = (self._acc >> self._nbits) & 0xFF
            self._out.append(byte)
            if byte == 0xFF:
                self._out.append(0x00)  # stuffing
        self._acc &= (1 << self._nbits) - 1

    def flush(self) -> None:
        """Pad the final partial byte with 1-bits (T.81 F.1.2.3)."""
        if self._nbits:
            pad = 8 - self._nbits
            self.write((1 << pad) - 1, pad)

    def emit_marker(self, marker_low: int) -> None:
        """Flush then write a raw marker (e.g. RSTn) into the stream."""
        self.flush()
        self._out.append(0xFF)
        self._out.append(marker_low)

    def getvalue(self) -> bytes:
        return bytes(self._out)

    def __len__(self) -> int:
        return len(self._out)


class BitReader:
    """MSB-first bit reader over a stuffed entropy-coded segment."""

    def __init__(self, data: bytes, pos: int = 0):
        self._data = data
        self._pos = pos
        self._acc = 0
        self._nbits = 0
        self.marker_found: int | None = None

    @property
    def byte_pos(self) -> int:
        """Position of the next unread byte in the underlying buffer."""
        return self._pos

    def _pull_byte(self) -> None:
        """Refill the accumulator — in bulk where the stream allows.

        The fast path loads four plain bytes (no 0xFF among them) in one
        gulp; a window containing 0xFF is handled byte-at-a-time so the
        stuffing (0xFF00) and marker rules apply exactly as before.
        """
        data, pos = self._data, self._pos
        chunk = data[pos:pos + 4]
        if len(chunk) == 4 and 0xFF not in chunk:
            self._acc = (self._acc << 32) | int.from_bytes(chunk, "big")
            self._nbits += 32
            self._pos = pos + 4
            return
        if pos >= len(data):
            raise EndOfScan("out of data")
        byte = data[pos]
        pos += 1
        if byte == 0xFF:
            if pos >= len(data):
                raise EndOfScan("truncated after 0xFF")
            nxt = data[pos]
            if nxt == 0x00:
                pos += 1  # stuffed byte: 0xFF is data
            else:
                # A real marker terminates bit-reading here.
                self.marker_found = nxt
                raise EndOfScan(f"marker 0xFF{nxt:02X}")
        self._acc = (self._acc << 8) | byte
        self._nbits += 8
        self._pos = pos

    def ensure_bits(self, want: int) -> int:
        """Best-effort refill to ``want`` buffered bits *without raising*.

        Returns the number of bits now buffered, which may be less than
        ``want`` when a marker (or the end of the buffer) is closer.
        Unlike :meth:`read`, hitting a marker neither raises
        :class:`EndOfScan` nor records ``marker_found`` — nothing past
        the last whole data byte is consumed, so a subsequent
        :meth:`read` still fails at exactly the position the one-bit-at-
        a-time path would have.
        """
        nbits = self._nbits
        if nbits >= want:
            return nbits
        data, pos = self._data, self._pos
        size = len(data)
        acc = self._acc
        while nbits < want:
            chunk = data[pos:pos + 4]
            if len(chunk) == 4 and 0xFF not in chunk:
                acc = (acc << 32) | int.from_bytes(chunk, "big")
                nbits += 32
                pos += 4
                continue
            if pos >= size:
                break
            byte = data[pos]
            if byte == 0xFF:
                if pos + 1 >= size or data[pos + 1] != 0x00:
                    break            # marker / truncation: stop cleanly
                acc = (acc << 8) | 0xFF
                pos += 2
            else:
                acc = (acc << 8) | byte
                pos += 1
            nbits += 8
        self._acc = acc
        self._nbits = nbits
        self._pos = pos
        return nbits

    def read(self, nbits: int) -> int:
        """Read ``nbits`` (MSB first); raises EndOfScan past the segment."""
        if nbits < 0 or nbits > 24:
            raise ValueError(f"nbits out of range: {nbits}")
        have = self._nbits
        while have < nbits:
            self._pull_byte()
            have = self._nbits
        have -= nbits
        self._nbits = have
        value = (self._acc >> have) & _MASK[nbits]
        self._acc &= _MASK[have]
        return value

    def read_bit(self) -> int:
        return self.read(1)

    def align_and_consume_rst(self) -> int:
        """Drop pad bits, consume an RSTn marker; returns n (0..7)."""
        self._acc = 0
        self._nbits = 0
        data, pos = self._data, self._pos
        if pos + 1 >= len(data) or data[pos] != 0xFF:
            raise EndOfScan("expected RST marker")
        low = data[pos + 1]
        if not 0xD0 <= low <= 0xD7:
            raise EndOfScan(f"expected RSTn, found 0xFF{low:02X}")
        self._pos = pos + 2
        return low - 0xD0
