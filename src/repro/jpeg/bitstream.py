"""Entropy-coded-segment bit I/O with JPEG byte stuffing.

Within a JPEG scan, any 0xFF data byte is followed by a stuffed 0x00 so
decoders can find markers by scanning for 0xFF. The reader treats
0xFF D0-D7 (RSTn) as segment boundaries and any other marker as
end-of-scan.
"""

from __future__ import annotations

__all__ = ["BitWriter", "BitReader", "EndOfScan"]


class EndOfScan(Exception):
    """Reader hit a non-RST marker (or ran out of bytes) mid-read."""


class BitWriter:
    """MSB-first bit accumulator emitting a stuffed entropy-coded segment."""

    def __init__(self) -> None:
        self._out = bytearray()
        self._acc = 0
        self._nbits = 0

    def write(self, value: int, nbits: int) -> None:
        """Append the low ``nbits`` of ``value``, MSB first."""
        if nbits < 0 or nbits > 24:
            raise ValueError(f"nbits out of range: {nbits}")
        if nbits == 0:
            return
        if value < 0 or value >= (1 << nbits):
            raise ValueError(f"value {value} does not fit in {nbits} bits")
        self._acc = (self._acc << nbits) | value
        self._nbits += nbits
        while self._nbits >= 8:
            self._nbits -= 8
            byte = (self._acc >> self._nbits) & 0xFF
            self._out.append(byte)
            if byte == 0xFF:
                self._out.append(0x00)  # stuffing
        self._acc &= (1 << self._nbits) - 1

    def flush(self) -> None:
        """Pad the final partial byte with 1-bits (T.81 F.1.2.3)."""
        if self._nbits:
            pad = 8 - self._nbits
            self.write((1 << pad) - 1, pad)

    def emit_marker(self, marker_low: int) -> None:
        """Flush then write a raw marker (e.g. RSTn) into the stream."""
        self.flush()
        self._out.append(0xFF)
        self._out.append(marker_low)

    def getvalue(self) -> bytes:
        return bytes(self._out)

    def __len__(self) -> int:
        return len(self._out)


class BitReader:
    """MSB-first bit reader over a stuffed entropy-coded segment."""

    def __init__(self, data: bytes, pos: int = 0):
        self._data = data
        self._pos = pos
        self._acc = 0
        self._nbits = 0
        self.marker_found: int | None = None

    @property
    def byte_pos(self) -> int:
        """Position of the next unread byte in the underlying buffer."""
        return self._pos

    def _pull_byte(self) -> None:
        data, pos = self._data, self._pos
        if pos >= len(data):
            raise EndOfScan("out of data")
        byte = data[pos]
        pos += 1
        if byte == 0xFF:
            if pos >= len(data):
                raise EndOfScan("truncated after 0xFF")
            nxt = data[pos]
            if nxt == 0x00:
                pos += 1  # stuffed byte: 0xFF is data
            else:
                # A real marker terminates bit-reading here.
                self.marker_found = nxt
                raise EndOfScan(f"marker 0xFF{nxt:02X}")
        self._acc = (self._acc << 8) | byte
        self._nbits += 8
        self._pos = pos

    def read(self, nbits: int) -> int:
        """Read ``nbits`` (MSB first); raises EndOfScan past the segment."""
        if nbits < 0 or nbits > 24:
            raise ValueError(f"nbits out of range: {nbits}")
        while self._nbits < nbits:
            self._pull_byte()
        self._nbits -= nbits
        value = (self._acc >> self._nbits) & ((1 << nbits) - 1)
        self._acc &= (1 << self._nbits) - 1
        return value

    def read_bit(self) -> int:
        return self.read(1)

    def align_and_consume_rst(self) -> int:
        """Drop pad bits, consume an RSTn marker; returns n (0..7)."""
        self._acc = 0
        self._nbits = 0
        data, pos = self._data, self._pos
        if pos + 1 >= len(data) or data[pos] != 0xFF:
            raise EndOfScan("expected RST marker")
        low = data[pos + 1]
        if not 0xD0 <= low <= 0xD7:
            raise EndOfScan(f"expected RSTn, found 0xFF{low:02X}")
        self._pos = pos + 2
        return low - 0xD0
