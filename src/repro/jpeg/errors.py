"""Typed decode-error hierarchy.

The quarantine policy of :mod:`repro.faults` needs to *classify* corrupt
inputs, so every malformed-bitstream failure raises a subclass of
:class:`JpegDecodeError` instead of a bare ``ValueError``:

* :class:`JpegFormatError` — container/marker-structure problems found
  by the parser (kept as the historical catch-all name; all decode
  errors derive from it so existing ``except JpegFormatError`` call
  sites keep working).
* :class:`TruncatedStreamError` — the entropy-coded scan ended before
  every MCU was decoded (cut-off file, short read).
* :class:`BadMarkerError` — a marker appeared where it must not
  (restart markers out of order, unexpected marker mid-scan).
* :class:`BadHuffmanCodeError` — the bitstream contained a code word or
  symbol outside the declared Huffman tables (bit flips in the scan).
"""

from __future__ import annotations

__all__ = ["JpegDecodeError", "JpegFormatError", "TruncatedStreamError",
           "BadMarkerError", "BadHuffmanCodeError"]


class JpegDecodeError(ValueError):
    """Base of every malformed/unsupported-JPEG failure."""


class JpegFormatError(JpegDecodeError):
    """Malformed or unsupported JPEG container/marker structure."""


class TruncatedStreamError(JpegFormatError):
    """Entropy-coded data ran out before the scan was complete."""


class BadMarkerError(JpegFormatError):
    """Unexpected or out-of-order marker inside the scan."""


class BadHuffmanCodeError(JpegFormatError):
    """Bitstream decodes to a code word/symbol outside the tables."""
