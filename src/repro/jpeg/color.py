"""Color-space conversion and chroma (sub/up)sampling (JFIF / BT.601).

Full-range YCbCr as used by JFIF: Y in [0, 255], Cb/Cr centred at 128.
All routines are vectorised over whole images.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rgb_to_ycbcr", "ycbcr_to_rgb", "subsample_420", "upsample_420"]

_FWD = np.array([
    [0.299, 0.587, 0.114],
    [-0.168735892, -0.331264108, 0.5],
    [0.5, -0.418687589, -0.081312411],
])
_INV = np.linalg.inv(_FWD)


def rgb_to_ycbcr(rgb: np.ndarray) -> np.ndarray:
    """(H, W, 3) uint8/float RGB -> float64 YCbCr (same shape)."""
    rgb = np.asarray(rgb)
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3), got {rgb.shape}")
    ycc = rgb.astype(np.float64) @ _FWD.T
    ycc[..., 1:] += 128.0
    return ycc


def ycbcr_to_rgb(ycc: np.ndarray) -> np.ndarray:
    """Float YCbCr -> uint8 RGB, clipped to [0, 255]."""
    ycc = np.asarray(ycc, dtype=np.float64)
    if ycc.ndim != 3 or ycc.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3), got {ycc.shape}")
    shifted = ycc.copy()
    shifted[..., 1:] -= 128.0
    return _shifted_ycbcr_to_rgb(shifted)


def _shifted_ycbcr_to_rgb(shifted: np.ndarray) -> np.ndarray:
    """uint8 RGB from already chroma-centred float64 YCbCr.

    The decoder hot path builds the shifted array directly into a fresh
    buffer (no stack + copy); the arithmetic here is exactly the tail of
    :func:`ycbcr_to_rgb`, so pixels stay bit-identical.
    """
    rgb = shifted @ _INV.T
    np.round(rgb, out=rgb)
    np.clip(rgb, 0, 255, out=rgb)
    return rgb.astype(np.uint8)


def _pad_even(plane: np.ndarray) -> np.ndarray:
    """Edge-pad so both dimensions are even (needed for 2x2 pooling)."""
    h, w = plane.shape
    return np.pad(plane, ((0, h % 2), (0, w % 2)), mode="edge")


def subsample_420(plane: np.ndarray) -> np.ndarray:
    """2x2 box-average downsample of one chroma plane (4:2:0)."""
    plane = np.asarray(plane, dtype=np.float64)
    if plane.ndim != 2:
        raise ValueError(f"expected 2-D plane, got {plane.shape}")
    plane = _pad_even(plane)
    h, w = plane.shape
    return plane.reshape(h // 2, 2, w // 2, 2).mean(axis=(1, 3))


def upsample_420(plane: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    """Nearest (pixel-replication) 2x upsample, cropped to (out_h, out_w).

    Replication matches what fast decoders (and the paper's FPGA unit)
    do; the box-filter downsample plus replication round-trips DC levels
    exactly.
    """
    plane = np.asarray(plane, dtype=np.float64)
    if plane.ndim != 2:
        raise ValueError(f"expected 2-D plane, got {plane.shape}")
    up = np.repeat(np.repeat(plane, 2, axis=0), 2, axis=1)
    if up.shape[0] < out_h or up.shape[1] < out_w:
        up = np.pad(up, ((0, max(0, out_h - up.shape[0])),
                         (0, max(0, out_w - up.shape[1]))), mode="edge")
    return up[:out_h, :out_w]
