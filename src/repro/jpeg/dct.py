"""8x8 type-II/III DCT for JPEG, vectorised over stacks of blocks.

The transform is the separable matrix form C @ X @ C.T with the
orthonormal DCT-II basis; precomputing C once makes a full image a pair
of batched matmuls, which is the NumPy-idiomatic analogue of the paper's
iDCT hardware unit.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DCT_MATRIX", "fdct2", "idct2", "idct2_dequant",
           "idct2_dequant_scan"]


def _dct_matrix() -> np.ndarray:
    k = np.arange(8).reshape(8, 1)
    n = np.arange(8).reshape(1, 8)
    mat = np.cos((2 * n + 1) * k * np.pi / 16) * np.sqrt(2.0 / 8.0)
    mat[0, :] = 1.0 / np.sqrt(8.0)
    return mat


DCT_MATRIX = _dct_matrix()
_DCT_T = DCT_MATRIX.T.copy()


def _check_blocks(blocks: np.ndarray) -> np.ndarray:
    blocks = np.asarray(blocks, dtype=np.float64)
    if blocks.shape[-2:] != (8, 8):
        raise ValueError(f"expected trailing (8, 8), got {blocks.shape}")
    return blocks


def fdct2(blocks: np.ndarray) -> np.ndarray:
    """Forward 8x8 DCT-II of a block or stack of blocks."""
    blocks = _check_blocks(blocks)
    return DCT_MATRIX @ blocks @ _DCT_T


def idct2(coeffs: np.ndarray) -> np.ndarray:
    """Inverse 8x8 DCT (type-III) of a coefficient block or stack."""
    coeffs = _check_blocks(coeffs)
    return _DCT_T @ coeffs @ DCT_MATRIX


def idct2_dequant(qcoeffs: np.ndarray, qtable: np.ndarray) -> np.ndarray:
    """Dequantize + inverse DCT in one step (the decoder hot path).

    ``qcoeffs`` is an integer stack (..., 8, 8) of quantized coefficients;
    ``qtable`` the (8, 8) quantizer. Returns float pixel-domain blocks
    (still level-shifted by -128).

    Exactly one float64 conversion happens: the dequantize multiply
    upcasts the integer stack directly (``np.multiply(..., dtype=
    float64)``), and the iDCT matmuls run on that product without
    re-validating/re-converting through :func:`idct2` — int32 -> float64
    is exact, so the result is bit-identical to the staged composition.
    """
    qtable = np.asarray(qtable, dtype=np.float64)
    if qtable.shape != (8, 8):
        raise ValueError(f"qtable must be (8, 8), got {qtable.shape}")
    qcoeffs = np.asarray(qcoeffs)
    if qcoeffs.shape[-2:] != (8, 8):
        raise ValueError(f"expected trailing (8, 8), got {qcoeffs.shape}")
    coeffs = np.multiply(qcoeffs, qtable, dtype=np.float64)
    return _DCT_T @ coeffs @ DCT_MATRIX


def idct2_dequant_scan(qstacks: list[np.ndarray],
                       qtables: list[np.ndarray]) -> list[np.ndarray]:
    """Dequantize + inverse-DCT every component of a scan in one batch.

    ``qstacks`` holds one integer (..., 8, 8) coefficient stack per
    component, ``qtables`` the matching (8, 8) quantizers.  All blocks
    are gathered into a single (N, 8, 8) buffer so the iDCT runs as one
    pair of stacked matmuls over the whole scan instead of one call per
    component.

    Bit-identical to calling :func:`idct2_dequant` per component: each
    dequantize multiply runs per component segment with the same
    operands, and a stacked matmul applies the identical 8x8 GEMM to
    every slice, so grouping the blocks differently cannot change a
    single bit of any output block.
    """
    if len(qstacks) != len(qtables):
        raise ValueError(f"{len(qstacks)} coefficient stacks but "
                         f"{len(qtables)} quantization tables")
    shapes = []
    flats = []
    total = 0
    for qc in qstacks:
        qc = np.asarray(qc)
        if qc.shape[-2:] != (8, 8):
            raise ValueError(f"expected trailing (8, 8), got {qc.shape}")
        shapes.append(qc.shape)
        flat = qc.reshape(-1, 8, 8)
        flats.append(flat)
        total += flat.shape[0]
    coeffs = np.empty((total, 8, 8), dtype=np.float64)
    offset = 0
    for flat, qtable in zip(flats, qtables):
        qtable = np.asarray(qtable, dtype=np.float64)
        if qtable.shape != (8, 8):
            raise ValueError(f"qtable must be (8, 8), got {qtable.shape}")
        n = flat.shape[0]
        np.multiply(flat, qtable, dtype=np.float64,
                    out=coeffs[offset:offset + n])
        offset += n
    out = _DCT_T @ coeffs @ DCT_MATRIX
    results = []
    offset = 0
    for shape, flat in zip(shapes, flats):
        n = flat.shape[0]
        results.append(out[offset:offset + n].reshape(shape))
        offset += n
    return results
