"""Image resizing — the post-decode stage the FPGA resizer unit performs.

Bilinear (default, matches the paper's "resizing unit") and nearest
neighbour, vectorised with precomputed gather indices/weights.
"""

from __future__ import annotations

import numpy as np

__all__ = ["resize_bilinear", "resize_nearest", "center_crop"]


def _axis_weights(src: int, dst: int) -> tuple[np.ndarray, np.ndarray,
                                               np.ndarray]:
    """Half-pixel-centre sampling positions for one axis."""
    if dst <= 0 or src <= 0:
        raise ValueError("sizes must be positive")
    pos = (np.arange(dst) + 0.5) * (src / dst) - 0.5
    lo = np.floor(pos).astype(np.intp)
    frac = pos - lo
    lo = np.clip(lo, 0, src - 1)
    hi = np.clip(lo + 1, 0, src - 1)
    return lo, hi, frac


def resize_bilinear(img: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    """Bilinear resize of (H, W) or (H, W, C) to (out_h, out_w[, C]).

    uint8 input returns uint8 (rounded); float stays float64.
    """
    img = np.asarray(img)
    if img.ndim not in (2, 3):
        raise ValueError(f"expected 2-D or 3-D image, got {img.shape}")
    src_h, src_w = img.shape[:2]
    ylo, yhi, yf = _axis_weights(src_h, out_h)
    xlo, xhi, xf = _axis_weights(src_w, out_w)

    # Interpolate rows first (gather), then columns.  Gathering the
    # needed rows *before* the float64 conversion touches out_h rows
    # instead of src_h (uint8 -> float64 is exact, so the order swap
    # leaves every output value bit-identical).
    top = img[ylo].astype(np.float64)
    bot = img[yhi].astype(np.float64)
    if img.ndim == 3:
        yf_ = yf[:, None, None]
        xf_ = xf[None, :, None]
    else:
        yf_ = yf[:, None]
        xf_ = xf[None, :]
    rows = top * (1 - yf_) + bot * yf_
    left = rows[:, xlo]
    right = rows[:, xhi]
    out = left * (1 - xf_) + right * xf_
    if img.dtype == np.uint8:
        return np.clip(np.round(out), 0, 255).astype(np.uint8)
    return out


def resize_nearest(img: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    """Nearest-neighbour resize (cheap path, used by the 'modeled' mode)."""
    img = np.asarray(img)
    if img.ndim not in (2, 3):
        raise ValueError(f"expected 2-D or 3-D image, got {img.shape}")
    src_h, src_w = img.shape[:2]
    ys = np.minimum(((np.arange(out_h) + 0.5) * src_h / out_h).astype(np.intp),
                    src_h - 1)
    xs = np.minimum(((np.arange(out_w) + 0.5) * src_w / out_w).astype(np.intp),
                    src_w - 1)
    return img[np.ix_(ys, xs)]


def center_crop(img: np.ndarray, crop_h: int, crop_w: int) -> np.ndarray:
    """Central crop — the augmentation step left on the GPU side (S3.1)."""
    img = np.asarray(img)
    h, w = img.shape[:2]
    if crop_h > h or crop_w > w:
        raise ValueError(f"crop {crop_h}x{crop_w} exceeds image {h}x{w}")
    y0 = (h - crop_h) // 2
    x0 = (w - crop_w) // 2
    return img[y0:y0 + crop_h, x0:x0 + crop_w]
