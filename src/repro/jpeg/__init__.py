"""From-scratch baseline JPEG codec (ITU-T T.81), staged like the paper's
FPGA decoder: parser -> Huffman -> iDCT -> color -> resize.

The encoder exists to synthesise experiment corpora (real JPEG bytes);
the decoder is the functional core shared by the CPU backend, the nvJPEG
model and the FPGA decoder model.
"""

from .bitstream import BitReader, BitWriter, EndOfScan
from .cache import (cached_decode, cached_decode_resized,
                    clear_decode_cache, decode_cache, decode_cache_stats)
from .color import rgb_to_ycbcr, subsample_420, upsample_420, ycbcr_to_rgb
from .dct import fdct2, idct2, idct2_dequant
from .decoder import (coefficients_to_planes, decode, decode_resized,
                      entropy_decode, planes_to_image)
from .encoder import encode
from .errors import (BadHuffmanCodeError, BadMarkerError, JpegDecodeError,
                     TruncatedStreamError)
from .huffman import (STD_AC_CHROMA, STD_AC_LUMA, STD_DC_CHROMA, STD_DC_LUMA,
                      HuffmanTable, build_table_from_freqs)
from .jfif import (FrameHeader, JpegFormatError, Marker, ParsedJpeg,
                   parse_jpeg)
from .parallel import (entropy_decode_parallel, entropy_decode_segments,
                       find_restart_segments)
from .quant import (STD_CHROMA_QTABLE, STD_LUMA_QTABLE, scale_qtable,
                    zigzag_flatten, zigzag_unflatten)
from .resize import center_crop, resize_bilinear, resize_nearest

__all__ = [
    "encode", "decode", "decode_resized", "parse_jpeg", "entropy_decode",
    "cached_decode", "cached_decode_resized", "decode_cache",
    "decode_cache_stats", "clear_decode_cache",
    "coefficients_to_planes", "planes_to_image",
    "BitReader", "BitWriter", "EndOfScan",
    "HuffmanTable", "build_table_from_freqs",
    "STD_DC_LUMA", "STD_AC_LUMA", "STD_DC_CHROMA", "STD_AC_CHROMA",
    "STD_LUMA_QTABLE", "STD_CHROMA_QTABLE", "scale_qtable",
    "zigzag_flatten", "zigzag_unflatten",
    "fdct2", "idct2", "idct2_dequant",
    "rgb_to_ycbcr", "ycbcr_to_rgb", "subsample_420", "upsample_420",
    "resize_bilinear", "resize_nearest", "center_crop",
    "FrameHeader", "ParsedJpeg", "Marker", "JpegFormatError",
    "JpegDecodeError", "TruncatedStreamError", "BadMarkerError",
    "BadHuffmanCodeError",
    "entropy_decode_parallel", "entropy_decode_segments",
    "find_restart_segments",
]
