"""Baseline JPEG encoder (grayscale, YCbCr 4:4:4 and 4:2:0).

Used to synthesise the experiment corpora: the paper's inference clients
send "color JPEG-formatted images (average size 375x500)", and its
training sets are MNIST / ILSVRC12 — all of which we regenerate as real
JPEG bytes so the decoder substrates operate on genuine bitstreams.

Supports optional restart intervals; independent restart segments are
exactly what lets the FPGA decoder run a 4-way-parallel Huffman unit.
"""

from __future__ import annotations

import numpy as np

from .bitstream import BitWriter
from .color import rgb_to_ycbcr, subsample_420
from .dct import fdct2
from .huffman import (STD_AC_CHROMA, STD_AC_LUMA, STD_DC_CHROMA,
                      STD_DC_LUMA, build_table_from_freqs,
                      count_block_symbols, encode_block)
from .jfif import (FrameComponent, FrameHeader, Marker, ScanComponent,
                   ScanHeader, SegmentWriter)
from .quant import (STD_CHROMA_QTABLE, STD_LUMA_QTABLE, scale_qtable,
                    zigzag_flatten)

__all__ = ["encode", "plane_to_quantized_blocks"]


def plane_to_quantized_blocks(plane: np.ndarray, qtable: np.ndarray,
                              blocks_h: int, blocks_w: int) -> np.ndarray:
    """Level-shift, pad, 8x8-tile, DCT and quantize one component plane.

    Returns an int32 array of shape (blocks_h, blocks_w, 64) in zig-zag
    order, ready for entropy coding.
    """
    plane = np.asarray(plane, dtype=np.float64) - 128.0
    h, w = plane.shape
    pad_h, pad_w = blocks_h * 8 - h, blocks_w * 8 - w
    if pad_h < 0 or pad_w < 0:
        raise ValueError("block grid smaller than plane")
    if pad_h or pad_w:
        plane = np.pad(plane, ((0, pad_h), (0, pad_w)), mode="edge")
    blocks = (plane.reshape(blocks_h, 8, blocks_w, 8)
              .transpose(0, 2, 1, 3))          # (bh, bw, 8, 8)
    coeffs = fdct2(blocks)
    quantized = np.round(coeffs / qtable.astype(np.float64)).astype(np.int32)
    return zigzag_flatten(quantized)


def _component_planes(image: np.ndarray,
                      subsampling: str) -> tuple[list[np.ndarray],
                                                 list[tuple[int, int]]]:
    """Split the input into component planes + per-component (h, v)."""
    if image.ndim == 2:
        return [np.asarray(image, dtype=np.float64)], [(1, 1)]
    ycc = rgb_to_ycbcr(image)
    y, cb, cr = ycc[..., 0], ycc[..., 1], ycc[..., 2]
    if subsampling == "4:4:4":
        return [y, cb, cr], [(1, 1), (1, 1), (1, 1)]
    if subsampling == "4:2:0":
        return [y, subsample_420(cb), subsample_420(cr)], \
            [(2, 2), (1, 1), (1, 1)]
    raise ValueError(f"unsupported subsampling {subsampling!r}")


def _mcu_blocks(comp_blocks, samplings, mcus_y, mcus_x, restart_interval):
    """Yield (component index, zig-zag block, at_restart) in scan order."""
    ncomp = len(comp_blocks)
    mcu_index = 0
    for my in range(mcus_y):
        for mx in range(mcus_x):
            at_restart = bool(restart_interval and mcu_index
                              and mcu_index % restart_interval == 0)
            first_in_mcu = True
            for ci in range(ncomp):
                h, v = samplings[ci]
                for by in range(v):
                    for bx in range(h):
                        yield (ci, comp_blocks[ci][my * v + by, mx * h + bx],
                               at_restart and first_in_mcu)
                        first_in_mcu = False
            mcu_index += 1


def _optimized_tables(comp_blocks, samplings, mcus_y, mcus_x,
                      restart_interval, ncomp):
    """Statistics pass: per-class optimal Huffman tables (two-pass
    encoding, a la cjpeg -optimize)."""
    dc_freqs = [dict(), dict()]   # class 0 = luma, 1 = chroma
    ac_freqs = [dict(), dict()]
    pred = [0] * ncomp
    for ci, zz, at_restart in _mcu_blocks(comp_blocks, samplings, mcus_y,
                                          mcus_x, restart_interval):
        if at_restart:
            pred = [0] * ncomp
        cls = 0 if ci == 0 else 1
        pred[ci] = count_block_symbols(zz, pred[ci], dc_freqs[cls],
                                       ac_freqs[cls])
    tables = []
    for cls in range(2):
        if not dc_freqs[cls]:
            tables.append((None, None))
            continue
        tables.append((build_table_from_freqs(dc_freqs[cls]),
                       build_table_from_freqs(ac_freqs[cls])))
    return tables


def encode(image: np.ndarray, quality: int = 75,
           subsampling: str = "4:2:0", restart_interval: int = 0,
           optimize_huffman: bool = False) -> bytes:
    """Encode (H, W) grayscale or (H, W, 3) RGB uint8 to baseline JPEG.

    ``optimize_huffman`` enables two-pass encoding with per-image
    optimal canonical tables instead of the Annex-K defaults (smaller
    files, identical decoded pixels).
    """
    image = np.asarray(image)
    if image.dtype != np.uint8:
        raise TypeError(f"expected uint8 image, got {image.dtype}")
    if image.ndim == 2:
        pass
    elif image.ndim == 3 and image.shape[2] == 3:
        pass
    else:
        raise ValueError(f"expected (H, W) or (H, W, 3), got {image.shape}")
    height, width = image.shape[:2]

    planes, samplings = _component_planes(image, subsampling)
    ncomp = len(planes)
    hmax = max(h for h, _ in samplings)
    vmax = max(v for _, v in samplings)
    mcus_x = -(-width // (8 * hmax))
    mcus_y = -(-height // (8 * vmax))

    luma_q = scale_qtable(STD_LUMA_QTABLE, quality)
    chroma_q = scale_qtable(STD_CHROMA_QTABLE, quality)
    qtables = [luma_q] + [chroma_q] * (ncomp - 1)
    qtable_ids = [0] + [1] * (ncomp - 1)

    # Per-component quantized blocks on the MCU-aligned grid.
    comp_blocks = []
    for plane, (h, v), q in zip(planes, samplings, qtables):
        comp_blocks.append(plane_to_quantized_blocks(
            plane, q, blocks_h=mcus_y * v, blocks_w=mcus_x * h))

    if optimize_huffman:
        cls_tables = _optimized_tables(comp_blocks, samplings, mcus_y,
                                       mcus_x, restart_interval, ncomp)
        dc_luma, ac_luma = cls_tables[0]
        dc_chroma, ac_chroma = cls_tables[1] if ncomp > 1 else (None, None)
    else:
        dc_luma, ac_luma = STD_DC_LUMA, STD_AC_LUMA
        dc_chroma, ac_chroma = STD_DC_CHROMA, STD_AC_CHROMA
    dc_tables = [dc_luma] + [dc_chroma] * (ncomp - 1)
    ac_tables = [ac_luma] + [ac_chroma] * (ncomp - 1)

    # --- headers ---------------------------------------------------------
    seg = SegmentWriter()
    seg.soi()
    seg.app0_jfif()
    seg.dqt(0, luma_q)
    if ncomp > 1:
        seg.dqt(1, chroma_q)
    frame = FrameHeader(
        precision=8, height=height, width=width,
        components=tuple(
            FrameComponent(i + 1, samplings[i][0], samplings[i][1],
                           qtable_ids[i])
            for i in range(ncomp)))
    seg.sof0(frame)
    seg.dht(0, 0, dc_luma)
    seg.dht(1, 0, ac_luma)
    if ncomp > 1:
        seg.dht(0, 1, dc_chroma)
        seg.dht(1, 1, ac_chroma)
    if restart_interval:
        seg.dri(restart_interval)
    scan = ScanHeader(tuple(
        ScanComponent(i + 1, 0 if i == 0 else 1, 0 if i == 0 else 1)
        for i in range(ncomp)))
    seg.sos(scan)

    # --- entropy-coded scan ----------------------------------------------
    writer = BitWriter()
    pred = [0] * ncomp
    rst_n = 0
    mcu_index = 0
    for my in range(mcus_y):
        for mx in range(mcus_x):
            if restart_interval and mcu_index and \
                    mcu_index % restart_interval == 0:
                writer.emit_marker(Marker.RST0 + rst_n)
                rst_n = (rst_n + 1) % 8
                pred = [0] * ncomp
            for ci in range(ncomp):
                h, v = samplings[ci]
                for by in range(v):
                    for bx in range(h):
                        zz = comp_blocks[ci][my * v + by, mx * h + bx]
                        pred[ci] = encode_block(writer, zz, pred[ci],
                                                dc_tables[ci], ac_tables[ci])
            mcu_index += 1
    writer.flush()
    seg.raw(writer.getvalue())
    seg.eoi()
    return seg.getvalue()
