"""Quantization tables and zig-zag scan order (ITU-T T.81 Annex K).

The tables here are the "typical" luminance/chrominance matrices from the
JPEG standard, scaled by the familiar IJG quality formula so encoder and
decoder agree bit-for-bit.
"""

from __future__ import annotations

import numpy as np

__all__ = ["STD_LUMA_QTABLE", "STD_CHROMA_QTABLE", "ZIGZAG", "INV_ZIGZAG",
           "scale_qtable", "zigzag_flatten", "zigzag_unflatten"]

# Annex K Table K.1 — luminance.
STD_LUMA_QTABLE = np.array([
    [16, 11, 10, 16, 24, 40, 51, 61],
    [12, 12, 14, 19, 26, 58, 60, 55],
    [14, 13, 16, 24, 40, 57, 69, 56],
    [14, 17, 22, 29, 51, 87, 80, 62],
    [18, 22, 37, 56, 68, 109, 103, 77],
    [24, 35, 55, 64, 81, 104, 113, 92],
    [49, 64, 78, 87, 103, 121, 120, 101],
    [72, 92, 95, 98, 112, 100, 103, 99],
], dtype=np.uint16)

# Annex K Table K.2 — chrominance.
STD_CHROMA_QTABLE = np.array([
    [17, 18, 24, 47, 99, 99, 99, 99],
    [18, 21, 26, 66, 99, 99, 99, 99],
    [24, 26, 56, 99, 99, 99, 99, 99],
    [47, 66, 99, 99, 99, 99, 99, 99],
    [99, 99, 99, 99, 99, 99, 99, 99],
    [99, 99, 99, 99, 99, 99, 99, 99],
    [99, 99, 99, 99, 99, 99, 99, 99],
    [99, 99, 99, 99, 99, 99, 99, 99],
], dtype=np.uint16)


def _build_zigzag() -> np.ndarray:
    """Index map: ZIGZAG[k] = flat (row*8+col) index of the k-th coefficient
    in zig-zag scan order."""
    order = sorted(
        ((r, c) for r in range(8) for c in range(8)),
        key=lambda rc: (rc[0] + rc[1],
                        rc[0] if (rc[0] + rc[1]) % 2 else rc[1]),
    )
    return np.array([r * 8 + c for r, c in order], dtype=np.intp)


ZIGZAG = _build_zigzag()
INV_ZIGZAG = np.argsort(ZIGZAG)


def scale_qtable(table: np.ndarray, quality: int) -> np.ndarray:
    """Scale a base table by IJG quality (1..100); entries clamped to 1..255.

    quality 50 returns the base table; 100 is (almost) lossless-ish; low
    values quantize savagely.
    """
    if not 1 <= quality <= 100:
        raise ValueError(f"quality must be in 1..100, got {quality}")
    if quality < 50:
        scale = 5000 // quality
    else:
        scale = 200 - 2 * quality
    scaled = (table.astype(np.int64) * scale + 50) // 100
    return np.clip(scaled, 1, 255).astype(np.uint16)


def zigzag_flatten(block: np.ndarray) -> np.ndarray:
    """8x8 block -> length-64 vector in zig-zag order.

    Accepts a trailing-(8, 8) stack of blocks and vectorises over it.
    """
    if block.shape[-2:] != (8, 8):
        raise ValueError(f"expected trailing (8, 8), got {block.shape}")
    flat = block.reshape(*block.shape[:-2], 64)
    return flat[..., ZIGZAG]


def zigzag_unflatten(vec: np.ndarray) -> np.ndarray:
    """Length-64 zig-zag vector -> 8x8 block (stacks supported)."""
    if vec.shape[-1] != 64:
        raise ValueError(f"expected trailing 64, got {vec.shape}")
    return vec[..., INV_ZIGZAG].reshape(*vec.shape[:-1], 8, 8)
