"""Restart-interval-parallel entropy decoding.

The hardware justification for the paper's 4-way Huffman unit is that a
JPEG scan cut by restart markers (RSTn) consists of *independently
decodable* segments: each restart resets the DC predictors and
bit-aligns the stream, so segments can decode concurrently with no
cross-talk.  This module is the functional counterpart: it splits the
entropy-coded data at restart markers and decodes the segments
independently (round-robin over ``ways`` lanes, exactly like the
hardware's multiplex-streams collector), then verifies against the
sequential decoder in the tests.

For streams without restart markers the scan is a single segment and
parallel decode degenerates to sequential — which is why DLBooster's
ingest prefers restart-enabled encodes.
"""

from __future__ import annotations

import numpy as np

from .bitstream import BitReader, EndOfScan
from .huffman import decode_block
from .jfif import JpegFormatError, ParsedJpeg

__all__ = ["find_restart_segments", "entropy_decode_segments",
           "entropy_decode_parallel"]


def find_restart_segments(parsed: ParsedJpeg) -> list[tuple[int, int]]:
    """Byte ranges [(start, end), ...] of the scan's restart segments.

    Scans the entropy-coded data for unstuffed RSTn markers.  The final
    segment ends at the terminating (non-RST) marker.
    """
    data = parsed.data
    pos = parsed.scan_offset
    segments = []
    start = pos
    while pos < len(data) - 1:
        if data[pos] == 0xFF:
            nxt = data[pos + 1]
            if nxt == 0x00:
                pos += 2  # stuffed data byte
                continue
            if 0xD0 <= nxt <= 0xD7:
                segments.append((start, pos))
                pos += 2
                start = pos
                continue
            # Any other marker terminates the scan.
            segments.append((start, pos))
            return segments
        pos += 1
    segments.append((start, len(data)))
    return segments


def _decode_segment(parsed: ParsedJpeg, seg_start: int, seg_end: int,
                    first_mcu: int, mcu_count: int,
                    out: list[np.ndarray]) -> None:
    """Decode ``mcu_count`` MCUs from one restart segment into ``out``."""
    frame, scan = parsed.frame, parsed.scan
    order = {c.component_id: i for i, c in enumerate(frame.components)}
    scan_idx = [order[c.component_id] for c in scan.components]
    dc_tabs = [parsed.dc_tables[c.dc_table_id] for c in scan.components]
    ac_tabs = [parsed.ac_tables[c.ac_table_id] for c in scan.components]
    mcus_x = frame.mcus_per_row

    reader = BitReader(parsed.data[seg_start:seg_end])
    pred = [0] * len(frame.components)  # restart resets DC prediction
    for k in range(mcu_count):
        mcu = first_mcu + k
        my, mx = divmod(mcu, mcus_x)
        for si, ci in enumerate(scan_idx):
            comp = frame.components[ci]
            for by in range(comp.v_samp):
                for bx in range(comp.h_samp):
                    try:
                        zz, pred[ci] = decode_block(
                            reader, pred[ci], dc_tabs[si], ac_tabs[si])
                    except EndOfScan as exc:
                        raise JpegFormatError(
                            f"segment truncated at MCU {mcu}: {exc}"
                        ) from None
                    except ValueError as exc:
                        raise JpegFormatError(
                            f"corrupt segment at MCU {mcu}: {exc}"
                        ) from None
                    out[ci][my * comp.v_samp + by,
                            mx * comp.h_samp + bx] = zz


def entropy_decode_segments(parsed: ParsedJpeg) -> list[np.ndarray]:
    """Sequential reference over the segment list (used for testing the
    splitter independently of lane assignment)."""
    return entropy_decode_parallel(parsed, ways=1)


def entropy_decode_parallel(parsed: ParsedJpeg,
                            ways: int = 4) -> list[np.ndarray]:
    """Decode the scan with ``ways`` independent Huffman lanes.

    Segments are dealt round-robin to lanes (the hardware's round-robin
    collector); because Python is sequential this is a *functional*
    model — the lanes' independence, not wall-clock speedup, is the
    property being modelled, and the FPGA timing model charges the
    per-way service times.
    """
    if ways < 1:
        raise ValueError(f"ways must be >= 1, got {ways}")
    frame = parsed.frame
    total_mcus = frame.mcus_per_row * frame.mcu_rows
    interval = parsed.restart_interval

    segments = find_restart_segments(parsed)
    if interval == 0 and len(segments) > 1:
        raise JpegFormatError("restart markers present but DRI missing")
    expected = 1 if interval == 0 else -(-total_mcus // interval)
    if len(segments) != expected:
        raise JpegFormatError(
            f"expected {expected} restart segments, found {len(segments)}")

    out: list[np.ndarray] = []
    for comp in frame.components:
        out.append(np.zeros(
            (frame.mcu_rows * comp.v_samp,
             frame.mcus_per_row * comp.h_samp, 64), dtype=np.int32))

    # Lane k takes segments k, k+ways, k+2*ways, ... — round robin.
    for lane in range(ways):
        for seg_index in range(lane, len(segments), ways):
            seg_start, seg_end = segments[seg_index]
            first_mcu = seg_index * (interval or total_mcus)
            count = min(interval or total_mcus, total_mcus - first_mcu)
            _decode_segment(parsed, seg_start, seg_end, first_mcu, count,
                            out)
    return out
