"""Content-addressed functional-decode cache.

Sweeps decode the same small functional corpus at every (point, seed):
the 8-image default corpus is decoded thousands of times per sweep, and
decode dominates functional-mode wall-clock.  This cache memoizes the
*output* of a decode keyed by the *content* of its input:

    key = (zlib.crc32(jpeg_bytes), params fingerprint)

plus an exact byte-equality check against the stored payload on every
hit, so a crc32 collision degrades to a miss instead of serving the
wrong image.  Content addressing is what makes the cache safe under
fault injection: poison/truncation/bitflip faults really mutate the
payload bytes (see ``repro.faults.injector``), so a corrupted stream
can never alias a clean entry — it has a different key — and a clean
stream can never inherit a poisoned result.

The cache is process-local, bounded (LRU), and caches *failures* too:
a payload that raised a typed decode error raises the same error again
on the next sight, which is exactly what re-decoding would do.

``reference_mode()`` flips :data:`_BYPASS` for its scope, so A/B
comparisons measure the real decoder both times.  Cached arrays are
returned read-only (no defensive copy — consumers treat decoded pixels
as immutable); callers that need to scribble must copy.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from typing import Any, Optional

import numpy as np

from .decoder import decode, decode_resized
from .errors import JpegDecodeError

__all__ = ["DecodeCache", "cached_decode", "cached_decode_resized",
           "decode_cache", "decode_cache_stats", "clear_decode_cache"]

# reference_mode() patches this True so A/B runs bypass the cache; the
# fault tests also flip it to compare cached vs uncached behaviour.
_BYPASS = False


class DecodeCache:
    """A bounded LRU of decode outcomes, content-addressed.

    The cache stores opaque ``outcome`` values (the callers decide what
    an outcome is — a pixel array, or a recorded failure) under
    ``(crc32(payload), fingerprint)``; each entry also retains the
    payload bytes it was computed from, compared on every hit so crc32
    collisions can never alias two different bitstreams.
    """

    def __init__(self, maxsize: int = 1024):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._entries: "OrderedDict[tuple, tuple[bytes, Any]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.collisions = 0
        self.evictions = 0

    def lookup(self, payload: bytes, fingerprint: tuple) -> Optional[tuple]:
        """``(outcome,)`` on a verified hit, ``None`` on miss/bypass.

        The one-tuple wrapping distinguishes a miss from a legitimately
        ``None``-valued outcome.
        """
        if _BYPASS:
            return None
        key = (zlib.crc32(payload), fingerprint)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        stored, outcome = entry
        if stored != payload:           # crc32 collision: treat as miss
            self.collisions += 1
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(key)
        return (outcome,)

    def insert(self, payload: bytes, fingerprint: tuple,
               outcome: Any) -> None:
        if _BYPASS:
            return
        key = (zlib.crc32(payload), fingerprint)
        self._entries[key] = (payload, outcome)
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()
        self.hits = self.misses = self.collisions = self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict[str, int]:
        return {"entries": len(self._entries), "hits": self.hits,
                "misses": self.misses, "collisions": self.collisions,
                "evictions": self.evictions}


#: The process-wide cache instance (sweep workers each get their own —
#: fork workers inherit the parent's warm entries copy-on-write).
decode_cache = DecodeCache()


def decode_cache_stats() -> dict[str, int]:
    """Hit/miss/collision/eviction counters of the process-wide cache."""
    return decode_cache.stats()


def clear_decode_cache() -> None:
    """Drop every entry and zero the counters of the process-wide cache."""
    decode_cache.clear()


def _freeze(arr: np.ndarray) -> np.ndarray:
    arr.setflags(write=False)
    return arr


def _call_cached(fingerprint: tuple, payload: bytes, fn, *args):
    hit = decode_cache.lookup(payload, fingerprint)
    if hit is not None:
        outcome = hit[0]
        if isinstance(outcome, tuple):      # recorded failure
            cls, text = outcome
            raise cls(text)
        return outcome
    try:
        result = fn(payload, *args)
    except JpegDecodeError as exc:
        decode_cache.insert(payload, fingerprint, (type(exc), str(exc)))
        raise
    decode_cache.insert(payload, fingerprint, _freeze(result))
    return result


def cached_decode(data: bytes) -> np.ndarray:
    """:func:`repro.jpeg.decode`, memoized by content.

    Bit-identical to the uncached decoder (it *is* the uncached decoder
    on first sight); raises the same typed error for the same corrupt
    bytes.  The returned array is shared and read-only.
    """
    return _call_cached(("decode",), data, decode)


def cached_decode_resized(data: bytes, out_h: int, out_w: int) -> np.ndarray:
    """:func:`repro.jpeg.decode_resized`, memoized by content + geometry."""
    return _call_cached(("resized", out_h, out_w), data,
                        decode_resized, out_h, out_w)
