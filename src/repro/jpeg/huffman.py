"""Canonical Huffman coding for baseline JPEG (ITU-T T.81 Annex C/F/K).

Tables are the (BITS, HUFFVAL) pairs from the standard; both the encoder
side (symbol -> (code, length)) and a fast decoder side (length-indexed
canonical ranges) are derived from them.  The DC/AC symbol conventions —
magnitude categories, run/size packing, ZRL and EOB — live here too, so
the FPGA Huffman-unit model and the software decoder share one
implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .bitstream import BitReader, BitWriter

__all__ = ["HuffmanTable", "STD_DC_LUMA", "STD_AC_LUMA", "STD_DC_CHROMA",
           "STD_AC_CHROMA", "magnitude_category", "encode_magnitude",
           "decode_magnitude", "encode_block", "decode_block",
           "build_table_from_freqs"]


@dataclass
class HuffmanTable:
    """A canonical Huffman table defined by (bits, values) a la T.81.

    ``bits[i]`` is the number of codes of length i+1 (i = 0..15);
    ``values`` the symbols in canonical order.
    """

    bits: tuple[int, ...]
    values: tuple[int, ...]
    # Derived members (filled in __post_init__).
    encode_map: dict[int, tuple[int, int]] = field(default_factory=dict,
                                                   repr=False)
    _mincode: list[int] = field(default_factory=list, repr=False)
    _maxcode: list[int] = field(default_factory=list, repr=False)
    _valptr: list[int] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if len(self.bits) != 16:
            raise ValueError(f"bits must have 16 entries, got {len(self.bits)}")
        if sum(self.bits) != len(self.values):
            raise ValueError("sum(bits) must equal len(values)")
        if sum(self.bits) == 0:
            raise ValueError("empty Huffman table")
        # Canonical code assignment (T.81 C.2).
        code = 0
        k = 0
        self._mincode = [0] * 17
        self._maxcode = [-1] * 17
        self._valptr = [0] * 17
        for length in range(1, 17):
            count = self.bits[length - 1]
            self._valptr[length] = k
            self._mincode[length] = code
            for _ in range(count):
                symbol = self.values[k]
                if symbol in self.encode_map:
                    raise ValueError(f"duplicate symbol {symbol}")
                self.encode_map[symbol] = (code, length)
                code += 1
                k += 1
            self._maxcode[length] = code - 1
            if code > (1 << length):
                raise ValueError(f"over-subscribed at length {length}")
            code <<= 1

    def encode(self, writer: BitWriter, symbol: int) -> None:
        try:
            code, length = self.encode_map[symbol]
        except KeyError:
            raise ValueError(f"symbol {symbol} not in table") from None
        writer.write(code, length)

    def decode(self, reader: BitReader) -> int:
        """Read one symbol (T.81 F.2.2.3 DECODE procedure)."""
        code = reader.read_bit()
        length = 1
        while code > self._maxcode[length]:
            length += 1
            if length > 16:
                raise ValueError("corrupt stream: code longer than 16 bits")
            code = (code << 1) | reader.read_bit()
        idx = self._valptr[length] + (code - self._mincode[length])
        return self.values[idx]

    def code_lengths(self) -> dict[int, int]:
        """symbol -> code length, for entropy/cost analysis."""
        return {sym: ln for sym, (_, ln) in self.encode_map.items()}


# --- Annex K standard tables ---------------------------------------------
STD_DC_LUMA = HuffmanTable(
    bits=(0, 1, 5, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0),
    values=tuple(range(12)),
)

STD_DC_CHROMA = HuffmanTable(
    bits=(0, 3, 1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0),
    values=tuple(range(12)),
)

STD_AC_LUMA = HuffmanTable(
    bits=(0, 2, 1, 3, 3, 2, 4, 3, 5, 5, 4, 4, 0, 0, 1, 0x7D),
    values=(
        0x01, 0x02, 0x03, 0x00, 0x04, 0x11, 0x05, 0x12,
        0x21, 0x31, 0x41, 0x06, 0x13, 0x51, 0x61, 0x07,
        0x22, 0x71, 0x14, 0x32, 0x81, 0x91, 0xA1, 0x08,
        0x23, 0x42, 0xB1, 0xC1, 0x15, 0x52, 0xD1, 0xF0,
        0x24, 0x33, 0x62, 0x72, 0x82, 0x09, 0x0A, 0x16,
        0x17, 0x18, 0x19, 0x1A, 0x25, 0x26, 0x27, 0x28,
        0x29, 0x2A, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39,
        0x3A, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48, 0x49,
        0x4A, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59,
        0x5A, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69,
        0x6A, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78, 0x79,
        0x7A, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89,
        0x8A, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98,
        0x99, 0x9A, 0xA2, 0xA3, 0xA4, 0xA5, 0xA6, 0xA7,
        0xA8, 0xA9, 0xAA, 0xB2, 0xB3, 0xB4, 0xB5, 0xB6,
        0xB7, 0xB8, 0xB9, 0xBA, 0xC2, 0xC3, 0xC4, 0xC5,
        0xC6, 0xC7, 0xC8, 0xC9, 0xCA, 0xD2, 0xD3, 0xD4,
        0xD5, 0xD6, 0xD7, 0xD8, 0xD9, 0xDA, 0xE1, 0xE2,
        0xE3, 0xE4, 0xE5, 0xE6, 0xE7, 0xE8, 0xE9, 0xEA,
        0xF1, 0xF2, 0xF3, 0xF4, 0xF5, 0xF6, 0xF7, 0xF8,
        0xF9, 0xFA,
    ),
)

STD_AC_CHROMA = HuffmanTable(
    bits=(0, 2, 1, 2, 4, 4, 3, 4, 7, 5, 4, 4, 0, 1, 2, 0x77),
    values=(
        0x00, 0x01, 0x02, 0x03, 0x11, 0x04, 0x05, 0x21,
        0x31, 0x06, 0x12, 0x41, 0x51, 0x07, 0x61, 0x71,
        0x13, 0x22, 0x32, 0x81, 0x08, 0x14, 0x42, 0x91,
        0xA1, 0xB1, 0xC1, 0x09, 0x23, 0x33, 0x52, 0xF0,
        0x15, 0x62, 0x72, 0xD1, 0x0A, 0x16, 0x24, 0x34,
        0xE1, 0x25, 0xF1, 0x17, 0x18, 0x19, 0x1A, 0x26,
        0x27, 0x28, 0x29, 0x2A, 0x35, 0x36, 0x37, 0x38,
        0x39, 0x3A, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48,
        0x49, 0x4A, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58,
        0x59, 0x5A, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68,
        0x69, 0x6A, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78,
        0x79, 0x7A, 0x82, 0x83, 0x84, 0x85, 0x86, 0x87,
        0x88, 0x89, 0x8A, 0x92, 0x93, 0x94, 0x95, 0x96,
        0x97, 0x98, 0x99, 0x9A, 0xA2, 0xA3, 0xA4, 0xA5,
        0xA6, 0xA7, 0xA8, 0xA9, 0xAA, 0xB2, 0xB3, 0xB4,
        0xB5, 0xB6, 0xB7, 0xB8, 0xB9, 0xBA, 0xC2, 0xC3,
        0xC4, 0xC5, 0xC6, 0xC7, 0xC8, 0xC9, 0xCA, 0xD2,
        0xD3, 0xD4, 0xD5, 0xD6, 0xD7, 0xD8, 0xD9, 0xDA,
        0xE2, 0xE3, 0xE4, 0xE5, 0xE6, 0xE7, 0xE8, 0xE9,
        0xEA, 0xF2, 0xF3, 0xF4, 0xF5, 0xF6, 0xF7, 0xF8,
        0xF9, 0xFA,
    ),
)


# --- magnitude coding ------------------------------------------------------
def magnitude_category(value: int) -> int:
    """SSSS category: number of bits to represent |value| (0 for 0)."""
    return int(abs(int(value))).bit_length()


def encode_magnitude(value: int) -> tuple[int, int]:
    """Return (bits, nbits) of the T.81 variable-length integer."""
    value = int(value)
    ssss = magnitude_category(value)
    if ssss == 0:
        return 0, 0
    if value < 0:
        # One's-complement style: negative v encoded as v + 2^ssss - 1.
        return value + (1 << ssss) - 1, ssss
    return value, ssss


def decode_magnitude(bits: int, ssss: int) -> int:
    """Invert :func:`encode_magnitude` (T.81 F.2.2.1 EXTEND)."""
    if ssss == 0:
        return 0
    if bits < (1 << (ssss - 1)):
        return bits - (1 << ssss) + 1
    return bits


# --- block-level (de)coding -----------------------------------------------
ZRL = 0xF0  # run of 16 zeros
EOB = 0x00  # end of block


def encode_block(writer: BitWriter, zz: np.ndarray, pred_dc: int,
                 dc_table: HuffmanTable, ac_table: HuffmanTable) -> int:
    """Entropy-encode one zig-zag block; returns the new DC predictor."""
    dc = int(zz[0])
    diff = dc - pred_dc
    bits, ssss = encode_magnitude(diff)
    dc_table.encode(writer, ssss)
    writer.write(bits, ssss)

    run = 0
    for k in range(1, 64):
        coef = int(zz[k])
        if coef == 0:
            run += 1
            continue
        while run >= 16:
            ac_table.encode(writer, ZRL)
            run -= 16
        bits, ssss = encode_magnitude(coef)
        ac_table.encode(writer, (run << 4) | ssss)
        writer.write(bits, ssss)
        run = 0
    if run:
        ac_table.encode(writer, EOB)
    return dc


def decode_block(reader: BitReader, pred_dc: int, dc_table: HuffmanTable,
                 ac_table: HuffmanTable) -> tuple[np.ndarray, int]:
    """Decode one block; returns (zig-zag int32 vector, new DC predictor)."""
    zz = np.zeros(64, dtype=np.int32)
    ssss = dc_table.decode(reader)
    diff = decode_magnitude(reader.read(ssss), ssss) if ssss else 0
    dc = pred_dc + diff
    zz[0] = dc

    k = 1
    while k < 64:
        rs = ac_table.decode(reader)
        if rs == EOB:
            break
        run, ssss = rs >> 4, rs & 0x0F
        if ssss == 0:
            if rs != ZRL:
                raise ValueError(f"invalid AC symbol 0x{rs:02X}")
            k += 16
            continue
        k += run
        if k >= 64:
            raise ValueError("AC run overflows block")
        zz[k] = decode_magnitude(reader.read(ssss), ssss)
        k += 1
    return zz, dc


def count_block_symbols(zz: np.ndarray, pred_dc: int,
                        dc_freqs: dict[int, int],
                        ac_freqs: dict[int, int]) -> int:
    """Tally the Huffman symbols :func:`encode_block` would emit.

    The statistics pass of two-pass (optimized-table) encoding; returns
    the new DC predictor so callers chain it exactly like encoding.
    """
    dc = int(zz[0])
    ssss = magnitude_category(dc - pred_dc)
    dc_freqs[ssss] = dc_freqs.get(ssss, 0) + 1
    run = 0
    for k in range(1, 64):
        coef = int(zz[k])
        if coef == 0:
            run += 1
            continue
        while run >= 16:
            ac_freqs[ZRL] = ac_freqs.get(ZRL, 0) + 1
            run -= 16
        symbol = (run << 4) | magnitude_category(coef)
        ac_freqs[symbol] = ac_freqs.get(symbol, 0) + 1
        run = 0
    if run:
        ac_freqs[EOB] = ac_freqs.get(EOB, 0) + 1
    return dc


def build_table_from_freqs(freqs: dict[int, int],
                           max_length: int = 16) -> HuffmanTable:
    """Build an optimal length-limited canonical table from symbol counts.

    Package-merge is overkill for our corpus sizes; we use the classic
    Huffman construction followed by the T.81 K.3 length-limiting
    adjustment, matching what libjpeg's optimizer does.
    """
    if not freqs:
        raise ValueError("no symbols")
    # T.81 K.2: reserve one codepoint so no code is all-ones.
    counts = dict(freqs)
    reserved = 256
    counts[reserved] = 1

    import heapq
    heap: list[tuple[int, int, tuple[int, ...]]] = []
    serial = 0
    for sym, f in counts.items():
        heap.append((f, serial, (sym,)))
        serial += 1
    heapq.heapify(heap)
    depth: dict[int, int] = {s: 0 for s in counts}
    while len(heap) > 1:
        f1, _, s1 = heapq.heappop(heap)
        f2, _, s2 = heapq.heappop(heap)
        for s in s1 + s2:
            depth[s] += 1
        heapq.heappush(heap, (f1 + f2, serial, s1 + s2))
        serial += 1

    # Histogram of code lengths, then limit to max_length (K.3).
    maxdepth = max(depth.values()) if len(counts) > 1 else 1
    bits = [0] * (maxdepth + 1)
    for s, d in depth.items():
        bits[max(d, 1)] += 1
    i = len(bits) - 1
    while i > max_length:
        while bits[i] > 0:
            j = i - 2
            while bits[j] == 0:
                j -= 1
            bits[i] -= 2
            bits[i - 1] += 1
            bits[j + 1] += 2
            bits[j] -= 1
        i -= 1
    bits = bits[:max_length + 1]
    # Remove the reserved symbol: drop one code from the longest length.
    i = len(bits) - 1
    while bits[i] == 0:
        i -= 1
    bits[i] -= 1

    ordered = sorted((s for s in counts if s != reserved),
                     key=lambda s: (depth[s], s))
    bits16 = tuple(bits[1:] + [0] * (16 - (len(bits) - 1)))
    return HuffmanTable(bits=bits16, values=tuple(ordered))
