"""Canonical Huffman coding for baseline JPEG (ITU-T T.81 Annex C/F/K).

Tables are the (BITS, HUFFVAL) pairs from the standard; both the encoder
side (symbol -> (code, length)) and a fast decoder side (length-indexed
canonical ranges) are derived from them.  The DC/AC symbol conventions —
magnitude categories, run/size packing, ZRL and EOB — live here too, so
the FPGA Huffman-unit model and the software decoder share one
implementation.

Decoding is table-driven in the libjpeg-turbo style: an 8-bit lookahead
LUT maps every possible next byte of the bitstream straight to (symbol,
code length) for codes of <= 8 bits — the overwhelmingly common case in
Annex K streams — consuming the code in one step.  Codes longer than 8
bits, and reads within 8 bits of a marker, fall back to the reference
one-bit-at-a-time DECODE procedure (:meth:`HuffmanTable.decode_ref`),
which is kept verbatim both as the slow path and as the oracle the
property tests compare the LUT against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .bitstream import BitReader, BitWriter

__all__ = ["HuffmanTable", "STD_DC_LUMA", "STD_AC_LUMA", "STD_DC_CHROMA",
           "STD_AC_CHROMA", "magnitude_category", "encode_magnitude",
           "decode_magnitude", "encode_block", "decode_block",
           "build_table_from_freqs"]


@dataclass
class HuffmanTable:
    """A canonical Huffman table defined by (bits, values) a la T.81.

    ``bits[i]`` is the number of codes of length i+1 (i = 0..15);
    ``values`` the symbols in canonical order.
    """

    bits: tuple[int, ...]
    values: tuple[int, ...]
    # Derived members (filled in __post_init__).
    encode_map: dict[int, tuple[int, int]] = field(default_factory=dict,
                                                   repr=False)
    _mincode: list[int] = field(default_factory=list, repr=False)
    _maxcode: list[int] = field(default_factory=list, repr=False)
    _valptr: list[int] = field(default_factory=list, repr=False)
    # 8-bit lookahead LUT: for every 8-bit window whose prefix is a
    # complete code of length L <= 8, _lut[window] = (L << 8) | symbol;
    # _lut[window] = 0 marks a long (> 8 bit) code needing the
    # canonical walk.  (No length-1..8 code can collide with the 0
    # sentinel: a real entry always has L >= 1 in the high byte.)
    _lut: list[int] = field(default_factory=list, repr=False)
    # 16-bit combined lookaheads for decode_block, built lazily by
    # _lookahead16 (memoized on (bits, values) across instances).  DC
    # and AC interpret symbols differently, so each use gets a slot.
    _lut16_dc: Optional[list[int]] = field(default=None, repr=False)
    _lut16_ac: Optional[list[int]] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if len(self.bits) != 16:
            raise ValueError(f"bits must have 16 entries, got {len(self.bits)}")
        if sum(self.bits) != len(self.values):
            raise ValueError("sum(bits) must equal len(values)")
        if sum(self.bits) == 0:
            raise ValueError("empty Huffman table")
        # Canonical code assignment (T.81 C.2).
        code = 0
        k = 0
        self._mincode = [0] * 17
        self._maxcode = [-1] * 17
        self._valptr = [0] * 17
        for length in range(1, 17):
            count = self.bits[length - 1]
            self._valptr[length] = k
            self._mincode[length] = code
            for _ in range(count):
                symbol = self.values[k]
                if symbol in self.encode_map:
                    raise ValueError(f"duplicate symbol {symbol}")
                self.encode_map[symbol] = (code, length)
                code += 1
                k += 1
            self._maxcode[length] = code - 1
            if code > (1 << length):
                raise ValueError(f"over-subscribed at length {length}")
            code <<= 1
        # Lookahead LUT (libjpeg's jpeg_make_d_derived_tbl HUFF_LOOKAHEAD
        # idea): replicate each short code across every 8-bit window it
        # prefixes.
        self._lut = [0] * 256
        for symbol, (code, length) in self.encode_map.items():
            if length > 8:
                continue
            base = code << (8 - length)
            packed = (length << 8) | symbol
            for window in range(base, base + (1 << (8 - length))):
                self._lut[window] = packed

    def encode(self, writer: BitWriter, symbol: int) -> None:
        try:
            code, length = self.encode_map[symbol]
        except KeyError:
            raise ValueError(f"symbol {symbol} not in table") from None
        writer.write(code, length)

    def decode(self, reader: BitReader) -> int:
        """Read one symbol — LUT fast path, reference walk otherwise.

        Consumes exactly the same bits as :meth:`decode_ref` and returns
        the same symbol (or raises at the same bit position); the
        property tests in ``tests/jpeg/test_huffman_lut.py`` pin this.
        """
        nbits = reader._nbits
        if nbits >= 8 or reader.ensure_bits(8) >= 8:
            nbits = reader._nbits
            window = (reader._acc >> (nbits - 8)) & 0xFF
            packed = self._lut[window]
            if packed:
                nbits -= packed >> 8
                reader._nbits = nbits
                reader._acc &= (1 << nbits) - 1
                return packed & 0xFF
        # Long code, or fewer than 8 bits left before a marker: the
        # reference walk reads bit-by-bit from the (already buffered)
        # accumulator and fails exactly where the pre-LUT decoder did.
        return self.decode_ref(reader)

    def decode_ref(self, reader: BitReader) -> int:
        """Read one symbol (T.81 F.2.2.3 DECODE procedure, reference).

        The pre-LUT implementation, byte for byte; kept as the slow path
        for > 8-bit codes and near-marker reads, and as the oracle the
        LUT path is property-tested against.
        """
        code = reader.read_bit()
        length = 1
        while code > self._maxcode[length]:
            length += 1
            if length > 16:
                raise ValueError("corrupt stream: code longer than 16 bits")
            code = (code << 1) | reader.read_bit()
        idx = self._valptr[length] + (code - self._mincode[length])
        return self.values[idx]

    def code_lengths(self) -> dict[int, int]:
        """symbol -> code length, for entropy/cost analysis."""
        return {sym: ln for sym, (_, ln) in self.encode_map.items()}


# --- Annex K standard tables ---------------------------------------------
STD_DC_LUMA = HuffmanTable(
    bits=(0, 1, 5, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0),
    values=tuple(range(12)),
)

STD_DC_CHROMA = HuffmanTable(
    bits=(0, 3, 1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0),
    values=tuple(range(12)),
)

STD_AC_LUMA = HuffmanTable(
    bits=(0, 2, 1, 3, 3, 2, 4, 3, 5, 5, 4, 4, 0, 0, 1, 0x7D),
    values=(
        0x01, 0x02, 0x03, 0x00, 0x04, 0x11, 0x05, 0x12,
        0x21, 0x31, 0x41, 0x06, 0x13, 0x51, 0x61, 0x07,
        0x22, 0x71, 0x14, 0x32, 0x81, 0x91, 0xA1, 0x08,
        0x23, 0x42, 0xB1, 0xC1, 0x15, 0x52, 0xD1, 0xF0,
        0x24, 0x33, 0x62, 0x72, 0x82, 0x09, 0x0A, 0x16,
        0x17, 0x18, 0x19, 0x1A, 0x25, 0x26, 0x27, 0x28,
        0x29, 0x2A, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39,
        0x3A, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48, 0x49,
        0x4A, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59,
        0x5A, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69,
        0x6A, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78, 0x79,
        0x7A, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89,
        0x8A, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98,
        0x99, 0x9A, 0xA2, 0xA3, 0xA4, 0xA5, 0xA6, 0xA7,
        0xA8, 0xA9, 0xAA, 0xB2, 0xB3, 0xB4, 0xB5, 0xB6,
        0xB7, 0xB8, 0xB9, 0xBA, 0xC2, 0xC3, 0xC4, 0xC5,
        0xC6, 0xC7, 0xC8, 0xC9, 0xCA, 0xD2, 0xD3, 0xD4,
        0xD5, 0xD6, 0xD7, 0xD8, 0xD9, 0xDA, 0xE1, 0xE2,
        0xE3, 0xE4, 0xE5, 0xE6, 0xE7, 0xE8, 0xE9, 0xEA,
        0xF1, 0xF2, 0xF3, 0xF4, 0xF5, 0xF6, 0xF7, 0xF8,
        0xF9, 0xFA,
    ),
)

STD_AC_CHROMA = HuffmanTable(
    bits=(0, 2, 1, 2, 4, 4, 3, 4, 7, 5, 4, 4, 0, 1, 2, 0x77),
    values=(
        0x00, 0x01, 0x02, 0x03, 0x11, 0x04, 0x05, 0x21,
        0x31, 0x06, 0x12, 0x41, 0x51, 0x07, 0x61, 0x71,
        0x13, 0x22, 0x32, 0x81, 0x08, 0x14, 0x42, 0x91,
        0xA1, 0xB1, 0xC1, 0x09, 0x23, 0x33, 0x52, 0xF0,
        0x15, 0x62, 0x72, 0xD1, 0x0A, 0x16, 0x24, 0x34,
        0xE1, 0x25, 0xF1, 0x17, 0x18, 0x19, 0x1A, 0x26,
        0x27, 0x28, 0x29, 0x2A, 0x35, 0x36, 0x37, 0x38,
        0x39, 0x3A, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48,
        0x49, 0x4A, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58,
        0x59, 0x5A, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68,
        0x69, 0x6A, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78,
        0x79, 0x7A, 0x82, 0x83, 0x84, 0x85, 0x86, 0x87,
        0x88, 0x89, 0x8A, 0x92, 0x93, 0x94, 0x95, 0x96,
        0x97, 0x98, 0x99, 0x9A, 0xA2, 0xA3, 0xA4, 0xA5,
        0xA6, 0xA7, 0xA8, 0xA9, 0xAA, 0xB2, 0xB3, 0xB4,
        0xB5, 0xB6, 0xB7, 0xB8, 0xB9, 0xBA, 0xC2, 0xC3,
        0xC4, 0xC5, 0xC6, 0xC7, 0xC8, 0xC9, 0xCA, 0xD2,
        0xD3, 0xD4, 0xD5, 0xD6, 0xD7, 0xD8, 0xD9, 0xDA,
        0xE2, 0xE3, 0xE4, 0xE5, 0xE6, 0xE7, 0xE8, 0xE9,
        0xEA, 0xF2, 0xF3, 0xF4, 0xF5, 0xF6, 0xF7, 0xF8,
        0xF9, 0xFA,
    ),
)


# --- magnitude coding ------------------------------------------------------
def magnitude_category(value: int) -> int:
    """SSSS category: number of bits to represent |value| (0 for 0)."""
    return int(abs(int(value))).bit_length()


def encode_magnitude(value: int) -> tuple[int, int]:
    """Return (bits, nbits) of the T.81 variable-length integer."""
    value = int(value)
    ssss = magnitude_category(value)
    if ssss == 0:
        return 0, 0
    if value < 0:
        # One's-complement style: negative v encoded as v + 2^ssss - 1.
        return value + (1 << ssss) - 1, ssss
    return value, ssss


def decode_magnitude(bits: int, ssss: int) -> int:
    """Invert :func:`encode_magnitude` (T.81 F.2.2.1 EXTEND)."""
    if ssss == 0:
        return 0
    if bits < (1 << (ssss - 1)):
        return bits - (1 << ssss) + 1
    return bits


# --- block-level (de)coding -----------------------------------------------
ZRL = 0xF0  # run of 16 zeros
EOB = 0x00  # end of block


def encode_block(writer: BitWriter, zz: np.ndarray, pred_dc: int,
                 dc_table: HuffmanTable, ac_table: HuffmanTable) -> int:
    """Entropy-encode one zig-zag block; returns the new DC predictor."""
    dc = int(zz[0])
    diff = dc - pred_dc
    bits, ssss = encode_magnitude(diff)
    dc_table.encode(writer, ssss)
    writer.write(bits, ssss)

    run = 0
    for k in range(1, 64):
        coef = int(zz[k])
        if coef == 0:
            run += 1
            continue
        while run >= 16:
            ac_table.encode(writer, ZRL)
            run -= 16
        bits, ssss = encode_magnitude(coef)
        ac_table.encode(writer, (run << 4) | ssss)
        writer.write(bits, ssss)
        run = 0
    if run:
        ac_table.encode(writer, EOB)
    return dc


# --- 16-bit combined lookahead (decode_block fast path) --------------------
# A 16-bit window resolves *every* legal code (T.81 codes are <= 16 bits)
# and, for the overwhelmingly common short-code + small-magnitude case,
# the EXTENDed coefficient value too, so one list index replaces the
# whole decode-symbol / receive / extend sequence.  Entry classes:
#
#   0                        no code prefixes this window (corrupt)
#   (L<<20)|(run<<16)|ssss   code resolved, consume L; magnitude not
#                            contained in the window (or ssss > 15 /
#                            control symbols with ssss == 0: EOB, ZRL)
#   _COMPLETE | entry        code AND magnitude resolved in one step:
#       bits 0..15   EXTENDed coefficient value + 32768
#       bits 16..19  zero run
#       bits 20..25  total consumed bits (L + ssss)
#       bits 26..30  ssss (to un-consume the magnitude on error paths)
#
# Tables are derived lazily and memoized on (bits, values): the decoder
# parses fresh HuffmanTable objects per image, but almost every stream
# uses the Annex K tables, so the 65536-entry build runs once per
# distinct table per process.
_COMPLETE = 1 << 31

_LOOKAHEAD16_CACHE: dict[tuple, list[int]] = {}


def _lookahead16(table: HuffmanTable, is_dc: bool) -> list[int]:
    key = (table.bits, table.values, is_dc)
    lut = _LOOKAHEAD16_CACHE.get(key)
    if lut is None:
        lut = _LOOKAHEAD16_CACHE[key] = _build_lookahead16(table, is_dc)
    return lut


def _build_lookahead16(table: HuffmanTable, is_dc: bool) -> list[int]:
    lut = [0] * 65536
    for symbol, (code, length) in table.encode_map.items():
        if is_dc:
            run, ssss = 0, symbol
        else:
            run, ssss = symbol >> 4, symbol & 0x0F
        base = code << (16 - length)
        span = 1 << (16 - length)
        if ssss == 0:
            if is_dc:
                # DC category 0: diff == 0, complete with value 0.
                entry = _COMPLETE | (length << 20) | 32768
            else:
                # EOB / ZRL / invalid 0xN0: control, handled by run.
                entry = (length << 20) | (run << 16)
            lut[base:base + span] = [entry] * span
        elif ssss <= 15 and length + ssss <= 16:
            # Code and magnitude both inside the window: precompute the
            # EXTENDed value for each possible magnitude pattern and
            # replicate across the free low bits.
            shift = 16 - length - ssss
            rep = 1 << shift
            half = 1 << (ssss - 1)
            head = (_COMPLETE | (ssss << 26) | ((length + ssss) << 20)
                    | (run << 16))
            for mag in range(1 << ssss):
                value = mag if mag >= half else mag - (1 << ssss) + 1
                start = base + (mag << shift)
                lut[start:start + rep] = [head | (value + 32768)] * rep
        else:
            entry = (length << 20) | (run << 16) | ssss
            lut[base:base + span] = [entry] * span
    return lut


def decode_block(reader: BitReader, pred_dc: int, dc_table: HuffmanTable,
                 ac_table: HuffmanTable,
                 out: Optional[np.ndarray] = None) -> tuple[np.ndarray, int]:
    """Decode one block; returns (zig-zag int32 vector, new DC predictor).

    The hot loop runs entirely on local copies of the reader's bit
    accumulator *and* byte cursor: refills gulp four plain bytes at a
    time straight from the buffer (matching
    :meth:`~repro.jpeg.bitstream.BitReader.ensure_bits`), and each
    16-bit-window lookup (:func:`_lookahead16`) resolves a whole
    code + magnitude in one step for the common case, so decoding one
    coefficient is a handful of integer operations with no method calls.
    Pathological SSSS categories and reads within a code's reach of a
    marker write the state back and take the reference path (``decode``
    / ``read``), so every symbol, every consumed bit and every error is
    identical to the unfused composition of ``decode`` + ``read`` +
    EXTEND.

    ``out`` lets the caller supply a zeroed length-64 int32 view to
    decode into (the staged decoder passes rows of its coefficient
    planes, skipping a per-block allocation + copy).
    """
    zz = np.zeros(64, dtype=np.int32) if out is None else out
    dc_lut = dc_table._lut16_dc
    if dc_lut is None:
        dc_lut = dc_table._lut16_dc = _lookahead16(dc_table, True)
    ac_lut = ac_table._lut16_ac
    if ac_lut is None:
        ac_lut = ac_table._lut16_ac = _lookahead16(ac_table, False)
    data = reader._data
    size = len(data)
    acc = reader._acc
    nbits = reader._nbits
    pos = reader._pos
    dc = pred_dc

    # -- DC ----------------------------------------------------------
    if nbits < 31:
        # Inline best-effort refill (ensure_bits): 8-byte gulps of
        # plain bytes, byte-wise stuffing, clean stop at markers.
        # Filling to 55+ bits halves refill entries; decode decisions
        # still only require 31 (a 16-bit code plus a 15-bit magnitude).
        acc &= (1 << nbits) - 1
        while nbits < 55:
            if size - pos >= 8:
                chunk = data[pos:pos + 8]
                if 0xFF not in chunk:
                    acc = (acc << 64) | int.from_bytes(chunk, "big")
                    nbits += 64
                    pos += 8
                    continue
            if pos >= size:
                break
            byte = data[pos]
            if byte == 0xFF:
                if pos + 1 >= size or data[pos + 1] != 0x00:
                    break              # marker/truncation: stop cleanly
                acc = (acc << 8) | 0xFF
                pos += 2
            else:
                acc = (acc << 8) | byte
                pos += 1
            nbits += 8
    if nbits >= 31:
        v = dc_lut[(acc >> (nbits - 16)) & 0xFFFF]
        if v >= _COMPLETE:
            nbits -= (v >> 20) & 0x3F
            dc += (v & 0xFFFF) - 32768
        elif v:
            nbits -= (v >> 20) & 0x3F
            ssss = v & 0xFFFF
            if ssss <= 15:
                nbits -= ssss
                bits = (acc >> nbits) & ((1 << ssss) - 1)
                dc += (bits if bits >= (1 << (ssss - 1))
                       else bits - (1 << ssss) + 1)
            else:
                # Pathological category: defer to read(), which raises
                # (or consumes) exactly like the reference composition.
                reader._acc = acc & ((1 << nbits) - 1)
                reader._nbits = nbits
                reader._pos = pos
                bits = reader.read(ssss)
                dc += (bits if bits >= (1 << (ssss - 1))
                       else bits - (1 << ssss) + 1)
                acc = reader._acc
                nbits = reader._nbits
                pos = reader._pos
        else:
            # No code of any length prefixes the window: decode_ref
            # consumes 16 bits before giving up; mirror it exactly.
            nbits -= 16
            reader._acc = acc & ((1 << nbits) - 1)
            reader._nbits = nbits
            reader._pos = pos
            raise ValueError("corrupt stream: code longer than 16 bits")
    else:
        # Fewer than 31 bits buffered before a marker / end of data:
        # the reference path consumes (and fails) bit-for-bit like the
        # pre-LUT decoder.
        reader._acc = acc & ((1 << nbits) - 1)
        reader._nbits = nbits
        reader._pos = pos
        ssss = dc_table.decode(reader)
        if ssss:
            bits = reader.read(ssss)
            dc += (bits if bits >= (1 << (ssss - 1))
                   else bits - (1 << ssss) + 1)
        acc = reader._acc
        nbits = reader._nbits
        pos = reader._pos
    zz[0] = dc

    # -- AC ----------------------------------------------------------
    k = 1
    while k < 64:
        if nbits < 31:
            acc &= (1 << nbits) - 1
            while nbits < 55:
                if size - pos >= 8:
                    chunk = data[pos:pos + 8]
                    if 0xFF not in chunk:
                        acc = (acc << 64) | int.from_bytes(chunk, "big")
                        nbits += 64
                        pos += 8
                        continue
                if pos >= size:
                    break
                byte = data[pos]
                if byte == 0xFF:
                    if pos + 1 >= size or data[pos + 1] != 0x00:
                        break
                    acc = (acc << 8) | 0xFF
                    pos += 2
                else:
                    acc = (acc << 8) | byte
                    pos += 1
                nbits += 8
            if nbits < 31:
                # Near a marker / end of data: reference path, exact
                # reference bit positions on success and failure alike.
                reader._acc = acc
                reader._nbits = nbits
                reader._pos = pos
                sym = ac_table.decode(reader)
                if sym == EOB:
                    acc = reader._acc
                    nbits = reader._nbits
                    pos = reader._pos
                    break
                run, ssss = sym >> 4, sym & 0x0F
                if ssss == 0:
                    if sym != ZRL:
                        raise ValueError(f"invalid AC symbol 0x{sym:02X}")
                    k += 16
                else:
                    k += run
                    if k >= 64:
                        raise ValueError("AC run overflows block")
                    bits = reader.read(ssss)
                    zz[k] = (bits if bits >= (1 << (ssss - 1))
                             else bits - (1 << ssss) + 1)
                    k += 1
                acc = reader._acc
                nbits = reader._nbits
                pos = reader._pos
                continue
        v = ac_lut[(acc >> (nbits - 16)) & 0xFFFF]
        if v >= _COMPLETE:
            nbits -= (v >> 20) & 0x3F
            k += (v >> 16) & 0xF
            if k > 63:
                # The reference checks the run before reading the
                # magnitude: un-consume the magnitude bits.
                nbits += (v >> 26) & 0x1F
                reader._acc = acc & ((1 << nbits) - 1)
                reader._nbits = nbits
                reader._pos = pos
                raise ValueError("AC run overflows block")
            zz[k] = (v & 0xFFFF) - 32768
            k += 1
        elif v:
            nbits -= (v >> 20) & 0x3F
            ssss = v & 0xFFFF
            if ssss:
                k += (v >> 16) & 0xF
                if k > 63:
                    reader._acc = acc & ((1 << nbits) - 1)
                    reader._nbits = nbits
                    reader._pos = pos
                    raise ValueError("AC run overflows block")
                nbits -= ssss
                bits = (acc >> nbits) & ((1 << ssss) - 1)
                zz[k] = (bits if bits >= (1 << (ssss - 1))
                         else bits - (1 << ssss) + 1)
                k += 1
            else:
                run = (v >> 16) & 0xF
                if run == 0:           # EOB
                    break
                if run != 15:
                    reader._acc = acc & ((1 << nbits) - 1)
                    reader._nbits = nbits
                    reader._pos = pos
                    raise ValueError(
                        f"invalid AC symbol 0x{run << 4:02X}")
                k += 16                # ZRL
        else:
            nbits -= 16
            reader._acc = acc & ((1 << nbits) - 1)
            reader._nbits = nbits
            reader._pos = pos
            raise ValueError("corrupt stream: code longer than 16 bits")
    reader._acc = acc & ((1 << nbits) - 1)
    reader._nbits = nbits
    reader._pos = pos
    return zz, dc


def count_block_symbols(zz: np.ndarray, pred_dc: int,
                        dc_freqs: dict[int, int],
                        ac_freqs: dict[int, int]) -> int:
    """Tally the Huffman symbols :func:`encode_block` would emit.

    The statistics pass of two-pass (optimized-table) encoding; returns
    the new DC predictor so callers chain it exactly like encoding.
    """
    dc = int(zz[0])
    ssss = magnitude_category(dc - pred_dc)
    dc_freqs[ssss] = dc_freqs.get(ssss, 0) + 1
    run = 0
    for k in range(1, 64):
        coef = int(zz[k])
        if coef == 0:
            run += 1
            continue
        while run >= 16:
            ac_freqs[ZRL] = ac_freqs.get(ZRL, 0) + 1
            run -= 16
        symbol = (run << 4) | magnitude_category(coef)
        ac_freqs[symbol] = ac_freqs.get(symbol, 0) + 1
        run = 0
    if run:
        ac_freqs[EOB] = ac_freqs.get(EOB, 0) + 1
    return dc


def build_table_from_freqs(freqs: dict[int, int],
                           max_length: int = 16) -> HuffmanTable:
    """Build an optimal length-limited canonical table from symbol counts.

    Package-merge is overkill for our corpus sizes; we use the classic
    Huffman construction followed by the T.81 K.3 length-limiting
    adjustment, matching what libjpeg's optimizer does.
    """
    if not freqs:
        raise ValueError("no symbols")
    # T.81 K.2: reserve one codepoint so no code is all-ones.
    counts = dict(freqs)
    reserved = 256
    counts[reserved] = 1

    import heapq
    heap: list[tuple[int, int, tuple[int, ...]]] = []
    serial = 0
    for sym, f in counts.items():
        heap.append((f, serial, (sym,)))
        serial += 1
    heapq.heapify(heap)
    depth: dict[int, int] = {s: 0 for s in counts}
    while len(heap) > 1:
        f1, _, s1 = heapq.heappop(heap)
        f2, _, s2 = heapq.heappop(heap)
        for s in s1 + s2:
            depth[s] += 1
        heapq.heappush(heap, (f1 + f2, serial, s1 + s2))
        serial += 1

    # Histogram of code lengths, then limit to max_length (K.3).
    maxdepth = max(depth.values()) if len(counts) > 1 else 1
    bits = [0] * (maxdepth + 1)
    for s, d in depth.items():
        bits[max(d, 1)] += 1
    i = len(bits) - 1
    while i > max_length:
        while bits[i] > 0:
            j = i - 2
            while bits[j] == 0:
                j -= 1
            bits[i] -= 2
            bits[i - 1] += 1
            bits[j + 1] += 2
            bits[j] -= 1
        i -= 1
    bits = bits[:max_length + 1]
    # Remove the reserved symbol: drop one code from the longest length.
    i = len(bits) - 1
    while bits[i] == 0:
        i -= 1
    bits[i] -= 1

    ordered = sorted((s for s in counts if s != reserved),
                     key=lambda s: (depth[s], s))
    bits16 = tuple(bits[1:] + [0] * (16 - (len(bits) - 1)))
    return HuffmanTable(bits=bits16, values=tuple(ordered))
