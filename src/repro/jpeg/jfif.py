"""JPEG marker-segment writing and parsing (JFIF container, baseline DCT).

The parser mirrors the FPGA decoder's front-end "parser" unit from the
paper's Figure 4: it walks the marker stream, collects quantization and
Huffman tables, the frame/scan headers and the restart interval, and
hands the offset of the entropy-coded data to the Huffman stage.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

import numpy as np

from .errors import JpegFormatError
from .huffman import HuffmanTable
from .quant import ZIGZAG

__all__ = ["Marker", "FrameComponent", "FrameHeader", "ScanComponent",
           "ScanHeader", "ParsedJpeg", "SegmentWriter", "parse_jpeg",
           "JpegFormatError"]


class Marker:
    """Two-byte marker codes (low byte; all are prefixed 0xFF)."""

    SOI = 0xD8
    EOI = 0xD9
    SOF0 = 0xC0  # baseline sequential DCT
    SOF2 = 0xC2  # progressive (detected, rejected)
    DHT = 0xC4
    DQT = 0xDB
    DRI = 0xDD
    SOS = 0xDA
    APP0 = 0xE0
    COM = 0xFE
    RST0 = 0xD0


@dataclass(frozen=True)
class FrameComponent:
    component_id: int
    h_samp: int
    v_samp: int
    qtable_id: int


@dataclass(frozen=True)
class FrameHeader:
    precision: int
    height: int
    width: int
    components: tuple[FrameComponent, ...]

    @property
    def hmax(self) -> int:
        return max(c.h_samp for c in self.components)

    @property
    def vmax(self) -> int:
        return max(c.v_samp for c in self.components)

    @property
    def mcu_width(self) -> int:
        return 8 * self.hmax

    @property
    def mcu_height(self) -> int:
        return 8 * self.vmax

    @property
    def mcus_per_row(self) -> int:
        return -(-self.width // self.mcu_width)

    @property
    def mcu_rows(self) -> int:
        return -(-self.height // self.mcu_height)


@dataclass(frozen=True)
class ScanComponent:
    component_id: int
    dc_table_id: int
    ac_table_id: int


@dataclass(frozen=True)
class ScanHeader:
    components: tuple[ScanComponent, ...]


@dataclass
class ParsedJpeg:
    """Everything the entropy/pixel stages need, plus raw scan location."""

    frame: FrameHeader
    scan: ScanHeader
    qtables: dict[int, np.ndarray]
    dc_tables: dict[int, HuffmanTable]
    ac_tables: dict[int, HuffmanTable]
    restart_interval: int
    scan_offset: int  # byte offset of entropy-coded data
    data: bytes = field(repr=False)


class SegmentWriter:
    """Emits a well-formed JFIF byte stream segment by segment."""

    def __init__(self) -> None:
        self._out = bytearray()

    def soi(self) -> None:
        self._out += b"\xFF\xD8"

    def eoi(self) -> None:
        self._out += b"\xFF\xD9"

    def _segment(self, marker: int, payload: bytes) -> None:
        self._out += struct.pack(">BBH", 0xFF, marker, len(payload) + 2)
        self._out += payload

    def app0_jfif(self, density: tuple[int, int] = (72, 72)) -> None:
        payload = b"JFIF\x00" + struct.pack(">BBBHHBB", 1, 2, 1,
                                            density[0], density[1], 0, 0)
        self._segment(Marker.APP0, payload)

    def dqt(self, table_id: int, qtable: np.ndarray) -> None:
        if not 0 <= table_id <= 3:
            raise ValueError(f"bad qtable id {table_id}")
        zz = qtable.reshape(64)[ZIGZAG].astype(np.uint8)
        self._segment(Marker.DQT, bytes([table_id]) + zz.tobytes())

    def dht(self, table_class: int, table_id: int,
            table: HuffmanTable) -> None:
        if table_class not in (0, 1):
            raise ValueError("table_class must be 0 (DC) or 1 (AC)")
        header = bytes([(table_class << 4) | table_id])
        payload = header + bytes(table.bits) + bytes(table.values)
        self._segment(Marker.DHT, payload)

    def sof0(self, frame: FrameHeader) -> None:
        payload = struct.pack(">BHHB", frame.precision, frame.height,
                              frame.width, len(frame.components))
        for c in frame.components:
            payload += bytes([c.component_id,
                              (c.h_samp << 4) | c.v_samp,
                              c.qtable_id])
        self._segment(Marker.SOF0, payload)

    def dri(self, interval: int) -> None:
        self._segment(Marker.DRI, struct.pack(">H", interval))

    def sos(self, scan: ScanHeader) -> None:
        payload = bytes([len(scan.components)])
        for c in scan.components:
            payload += bytes([c.component_id,
                              (c.dc_table_id << 4) | c.ac_table_id])
        payload += bytes([0, 63, 0])  # Ss, Se, Ah/Al for baseline
        self._segment(Marker.SOS, payload)

    def raw(self, data: bytes) -> None:
        self._out += data

    def getvalue(self) -> bytes:
        return bytes(self._out)


def _parse_dqt(payload: bytes, qtables: dict[int, np.ndarray]) -> None:
    pos = 0
    while pos < len(payload):
        pq_tq = payload[pos]
        pq, tq = pq_tq >> 4, pq_tq & 0x0F
        pos += 1
        if pq != 0:
            raise JpegFormatError("16-bit quantization tables unsupported")
        if pos + 64 > len(payload):
            raise JpegFormatError("truncated DQT")
        zz = np.frombuffer(payload[pos:pos + 64], dtype=np.uint8)
        table = np.zeros(64, dtype=np.uint16)
        table[ZIGZAG] = zz
        qtables[tq] = table.reshape(8, 8)
        pos += 64


def _parse_dht(payload: bytes, dc: dict[int, HuffmanTable],
               ac: dict[int, HuffmanTable]) -> None:
    pos = 0
    while pos < len(payload):
        tc_th = payload[pos]
        tc, th = tc_th >> 4, tc_th & 0x0F
        pos += 1
        if pos + 16 > len(payload):
            raise JpegFormatError("truncated DHT")
        bits = tuple(payload[pos:pos + 16])
        pos += 16
        nvals = sum(bits)
        if pos + nvals > len(payload):
            raise JpegFormatError("truncated DHT values")
        values = tuple(payload[pos:pos + nvals])
        pos += nvals
        try:
            table = HuffmanTable(bits=bits, values=values)
        except ValueError as exc:
            raise JpegFormatError(f"malformed Huffman table: {exc}") \
                from None
        (dc if tc == 0 else ac)[th] = table


def _parse_sof0(payload: bytes) -> FrameHeader:
    if len(payload) < 6:
        raise JpegFormatError("truncated SOF0")
    precision, height, width, ncomp = struct.unpack(">BHHB", payload[:6])
    if precision != 8:
        raise JpegFormatError(f"unsupported precision {precision}")
    if height == 0 or width == 0:
        raise JpegFormatError("zero image dimension")
    if not 1 <= ncomp <= 4 or len(payload) < 6 + 3 * ncomp:
        raise JpegFormatError(f"bad SOF0 component count {ncomp}")
    comps = []
    pos = 6
    for _ in range(ncomp):
        cid, hv, tq = payload[pos], payload[pos + 1], payload[pos + 2]
        h_samp, v_samp = hv >> 4, hv & 0x0F
        if not (1 <= h_samp <= 4 and 1 <= v_samp <= 4):
            raise JpegFormatError(f"bad sampling factors {h_samp}x{v_samp}")
        comps.append(FrameComponent(cid, h_samp, v_samp, tq))
        pos += 3
    return FrameHeader(precision, height, width, tuple(comps))


def _parse_sos(payload: bytes, frame: FrameHeader) -> ScanHeader:
    if not payload:
        raise JpegFormatError("empty SOS")
    ncomp = payload[0]
    if not 1 <= ncomp <= 4 or len(payload) < 1 + 2 * ncomp:
        raise JpegFormatError(f"bad SOS component count {ncomp}")
    frame_ids = {c.component_id for c in frame.components}
    comps = []
    pos = 1
    for _ in range(ncomp):
        cid, tables = payload[pos], payload[pos + 1]
        if cid not in frame_ids:
            raise JpegFormatError(f"scan references unknown component {cid}")
        comps.append(ScanComponent(cid, tables >> 4, tables & 0x0F))
        pos += 2
    return ScanHeader(tuple(comps))


def parse_jpeg(data: bytes) -> ParsedJpeg:
    """Walk marker segments up to SOS; return headers + scan offset."""
    if len(data) < 4 or data[0] != 0xFF or data[1] != Marker.SOI:
        raise JpegFormatError("missing SOI")
    pos = 2
    qtables: dict[int, np.ndarray] = {}
    dc_tables: dict[int, HuffmanTable] = {}
    ac_tables: dict[int, HuffmanTable] = {}
    frame: FrameHeader | None = None
    restart_interval = 0

    while pos < len(data):
        if data[pos] != 0xFF:
            raise JpegFormatError(f"expected marker at byte {pos}")
        if pos + 1 >= len(data):
            raise JpegFormatError("stream ends inside a marker")
        marker = data[pos + 1]
        pos += 2
        if marker == Marker.EOI:
            raise JpegFormatError("EOI before SOS")
        if marker == Marker.SOF2:
            raise JpegFormatError("progressive JPEG unsupported (baseline only)")
        if pos + 2 > len(data):
            raise JpegFormatError("truncated segment header")
        seg_len = struct.unpack(">H", data[pos:pos + 2])[0]
        payload = data[pos + 2:pos + seg_len]
        if len(payload) != seg_len - 2:
            raise JpegFormatError("truncated segment payload")
        pos += seg_len

        if marker == Marker.DQT:
            _parse_dqt(payload, qtables)
        elif marker == Marker.DHT:
            _parse_dht(payload, dc_tables, ac_tables)
        elif marker == Marker.SOF0:
            frame = _parse_sof0(payload)
        elif marker == Marker.DRI:
            restart_interval = struct.unpack(">H", payload)[0]
        elif marker == Marker.SOS:
            if frame is None:
                raise JpegFormatError("SOS before SOF0")
            scan = _parse_sos(payload, frame)
            return ParsedJpeg(frame=frame, scan=scan, qtables=qtables,
                              dc_tables=dc_tables, ac_tables=ac_tables,
                              restart_interval=restart_interval,
                              scan_offset=pos, data=data)
        # APPn / COM / others: skipped.
    raise JpegFormatError("no SOS marker found")
