"""The pipeline watchdog: stall and deadlock detection.

A :class:`Watchdog` owns a registry of :class:`~repro.supervision
.heartbeat.Heartbeat` handles (one per supervised pipeline process) and
a set of watched channels.  A periodic scan flags any stage that has
been blocked on a channel — or running without progress — longer than
``stall_threshold_s``, and emits a :class:`StallReport` naming the
stage, the blocking channel and the depths of every watched queue.

Detection latency is bounded by ``stall_threshold_s + scan_period_s``;
the default scan period is a quarter of the threshold so a stall is
caught within ~1.25 thresholds of its onset.

The watchdog observes; it never mutates pipeline state.  With
``fail_fast=True`` the first stall raises :class:`PipelineStallError`
(the right behaviour for tests, where a stall means a deadlock
regression); otherwise stalls are counted, reported through
``on_stall`` and traced, and the pipeline is left to its fate — or to
the operator reading the report.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim import Counter, Environment
from .heartbeat import Heartbeat, StallReport

__all__ = ["PipelineStallError", "Watchdog"]


class PipelineStallError(RuntimeError):
    """A supervised stage exceeded its stall threshold (fail-fast mode)."""

    def __init__(self, report: StallReport):
        super().__init__(report.render())
        self.report = report


class Watchdog:
    """Periodic liveness scanner over registered heartbeats."""

    def __init__(self, env: Environment, stall_threshold_s: float = 0.5,
                 scan_period_s: Optional[float] = None,
                 fail_fast: bool = False,
                 on_stall: Optional[Callable[[StallReport], None]] = None,
                 keep_reports: int = 1000,
                 tracer=None, name: str = "watchdog"):
        if stall_threshold_s <= 0:
            raise ValueError("stall_threshold_s must be positive")
        if scan_period_s is not None and scan_period_s <= 0:
            raise ValueError("scan_period_s must be positive")
        self.env = env
        self.name = name
        self.stall_threshold_s = stall_threshold_s
        self.scan_period_s = (scan_period_s if scan_period_s is not None
                              else stall_threshold_s / 4)
        self.fail_fast = fail_fast
        self.on_stall = on_stall
        self.keep_reports = keep_reports
        self.tracer = tracer
        self.heartbeats: list[Heartbeat] = []
        self.stalls_detected = Counter(env, name=f"{name}.stalls")
        self.scans = Counter(env, name=f"{name}.scans")
        self.reports: list[StallReport] = []
        self._channels: list = []
        self._proc = None
        self._running = False

    # -- registry --------------------------------------------------------
    def register(self, name: str) -> Heartbeat:
        """Create and track the heartbeat for one pipeline stage."""
        hb = Heartbeat(self.env, name)
        self.heartbeats.append(hb)
        return hb

    def watch_channel(self, channel) -> None:
        """Include this channel's depth in every stall report."""
        self._channels.append(channel)

    # -- lifecycle -------------------------------------------------------
    def start(self) -> None:
        if self._proc is not None:
            raise RuntimeError("watchdog already started")
        self._running = True
        self._proc = self.env.process(self._scan_loop(), name=self.name)

    def stop(self) -> None:
        """Quiesce: the scan loop exits at its next wake-up."""
        self._running = False

    def _scan_loop(self):
        while self._running:
            yield self.env.timeout(self.scan_period_s)
            if not self._running:
                return
            self.scan()

    # -- detection -------------------------------------------------------
    def _queue_depths(self) -> dict[str, int]:
        return {ch.name: len(ch) for ch in self._channels}

    def scan(self) -> list[StallReport]:
        """One pass over every heartbeat; returns the *new* stall reports
        (also recorded on :attr:`reports`).  Callable directly by tests
        for synchronous checks."""
        self.scans.add()
        now = self.env.now
        new: list[StallReport] = []
        for hb in self.heartbeats:
            if hb.state == Heartbeat.IDLE or hb.stall_reported:
                continue
            stalled = hb.stalled_for(now)
            if stalled < self.stall_threshold_s:
                continue
            report = StallReport(
                when=now, stage=hb.name, state=hb.state,
                waiting_on=hb.waiting_on, stalled_for_s=stalled,
                progress=hb.progress_count,
                queue_depths=self._queue_depths())
            hb.stall_reported = True
            self.stalls_detected.add()
            if len(self.reports) < self.keep_reports:
                self.reports.append(report)
            new.append(report)
            if self.tracer is not None:
                self.tracer.instant(f"stall:{hb.name}", track="supervision")
            if self.on_stall is not None:
                self.on_stall(report)
            if self.fail_fast:
                raise PipelineStallError(report)
        return new
