"""Supervisor — one facade wiring watchdog, deadlines and integrity.

The supervision layer has three legs:

* **Watchdog** — every pipeline process registers a heartbeat; stalls
  and deadlocks surface as structured reports instead of silent hangs.
* **Deadline-aware admission control** — requests carry an absolute
  ``deadline_at``; bounded queues shed expired work (reject-on-admit /
  drop-expired-at-dequeue), and the FPGAReader and Dispatcher drop dead
  work at their boundaries instead of decoding and copying it.
* **End-to-end integrity** — items are checksummed at ingest and
  re-verified after decode, so silent payload corruption is detected
  and quarantined, never batched.

A :class:`Supervisor` is built from a :class:`SupervisionConfig` and
handed to a backend, which registers its stages and arms the policies
the config asks for.  ``SupervisionConfig(enabled=False)`` — or simply
not passing a supervisor — leaves the pipeline bit-identical (counters,
trace) to a build without this subsystem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim import Environment, ShedPolicy, deadline_of, scoped_name
from .heartbeat import Heartbeat, StallReport
from .integrity import IntegrityChecker
from .watchdog import Watchdog

__all__ = ["SupervisionConfig", "Supervisor", "DeadlineExceeded",
           "expire_request"]


class DeadlineExceeded(ConnectionError):
    """A request was shed because its deadline passed.

    Subclasses :class:`ConnectionError` so closed-loop clients treat a
    shed exactly like an RX drop: the window slot is reclaimed and a
    fresh request is issued.
    """


def expire_request(item, where: str = "shed") -> None:
    """Complete the bookkeeping for a shed item: fail its request's
    ``done_event`` (if any) so the issuer learns the work was dropped,
    and abort its causal trace (if traced) naming the shed point."""
    request = getattr(item, "request", None) or item
    trace = getattr(item, "trace", None)
    if trace is None:
        trace = getattr(request, "trace", None)
    if trace is not None and not trace.is_finished:
        trace.abort(f"shed:{where}")
    done = getattr(request, "done_event", None)
    if done is not None and not done.triggered:
        done.fail(DeadlineExceeded(
            f"request shed at {where}: deadline expired"))


@dataclass(frozen=True)
class SupervisionConfig:
    """Knobs for the supervision layer.

    ``deadline_s`` is the per-request latency budget; ``None`` disables
    deadline shedding entirely (requests without a stamped
    ``deadline_at`` never expire).  The three ``shed_*`` switches pick
    where expired work is dropped.  ``admission_margin_s`` is the
    estimated in-pipeline service time (decode + pool + copy + compute):
    the ingress boundary sheds a request once its remaining slack falls
    below this margin, because admitting it would only waste decode
    bandwidth on work that must expire downstream.  Without a margin an
    overloaded open-loop pipeline livelocks — the RX head-of-line age
    pins at the deadline, every admitted item has ~zero slack, and all
    of them are decoded then shed at the dispatcher.  ``integrity`` arms
    ingest checksumming + post-decode verification.  ``fail_fast`` turns
    the first detected stall into a raised :class:`PipelineStallError`
    — the right mode for tests, where a stall is a deadlock regression.
    """

    enabled: bool = True
    # watchdog
    stall_threshold_s: float = 0.5
    scan_period_s: Optional[float] = None
    fail_fast: bool = False
    # deadlines / admission control
    deadline_s: Optional[float] = None
    shed_at_admission: bool = True       # NIC RX enqueue + dequeue
    shed_at_reader: bool = True          # before decode is scheduled
    shed_at_dispatcher: bool = True      # before the PCIe copy
    admission_margin_s: float = 0.0      # required slack at ingress
    # integrity
    integrity: bool = False


class Supervisor:
    """Wires the supervision legs into a pipeline and aggregates their
    health metrics."""

    def __init__(self, env: Environment,
                 config: Optional[SupervisionConfig] = None, tracer=None,
                 name: str = "supervisor", namespace: str = ""):
        self.env = env
        self.config = config if config is not None else SupervisionConfig()
        self.namespace = namespace
        name = scoped_name(namespace, name)
        self.name = name
        self.tracer = tracer
        self.watchdog = Watchdog(
            env, stall_threshold_s=self.config.stall_threshold_s,
            scan_period_s=self.config.scan_period_s,
            fail_fast=self.config.fail_fast, tracer=tracer,
            name=f"{name}.watchdog")
        self.integrity: Optional[IntegrityChecker] = (
            IntegrityChecker(env, name=f"{name}.integrity")
            if self.config.integrity else None)
        self.rtracker = None   # repro.tracing.RequestTracker, when attached
        self._stoppables: list = []
        self._started = False

    # -- wiring (called by backends) -------------------------------------
    def register(self, stage_name: str) -> Heartbeat:
        """Heartbeat handle for one pipeline process.

        Stage names are prefixed with the supervisor's ``namespace``
        (``host03.fpga-reader``), so K supervised pipelines in one sim
        produce K distinct heartbeats instead of colliding.
        """
        return self.watchdog.register(
            scoped_name(self.namespace, stage_name))

    def watch_channel(self, channel) -> None:
        self.watchdog.watch_channel(channel)

    def track_stoppable(self, obj) -> None:
        """Remember a component with a ``stop()`` method for
        :meth:`shutdown` (the watchdog's clean-shutdown path)."""
        self._stoppables.append(obj)

    def attach_tracker(self, rtracker) -> None:
        """Wire a :class:`~repro.tracing.RequestTracker` into the
        supervision legs: every stall report now dumps the flight
        recorder as a post-mortem naming the blocking stage.  Runs
        before any ``fail_fast`` raise, so even a crashed test run has
        its evidence."""
        self.rtracker = rtracker
        previous = self.watchdog.on_stall

        def _on_stall(report, _prev=previous):
            self._stall_postmortem(report)
            if _prev is not None:
                _prev(report)

        self.watchdog.on_stall = _on_stall

    def _stall_postmortem(self, report: StallReport) -> None:
        if self.rtracker is not None:
            self.rtracker.postmortem(
                "stall", stage=report.waiting_on or report.stage)

    @property
    def postmortems(self) -> list:
        """Post-mortems collected by the attached tracker (empty when
        tracing is off)."""
        return [] if self.rtracker is None else self.rtracker.postmortems

    @property
    def sheds_deadlines(self) -> bool:
        return self.config.deadline_s is not None

    def arm_admission(self, channel) -> None:
        """Arm deadline shedding on an ingress channel (e.g. the NIC RX
        queue): requests without enough remaining slack
        (``admission_margin_s``) are rejected at enqueue and dropped at
        dequeue, and their issuers are notified via ``done_event``."""
        if not self.sheds_deadlines or not self.config.shed_at_admission:
            return
        margin = self.config.admission_margin_s
        extractor = deadline_of
        if margin > 0.0:
            def extractor(item, _base=deadline_of, _m=margin):
                return _base(item) - _m
        channel.arm_shed(ShedPolicy(
            deadline_of=extractor,
            reject_on_admit=True, drop_expired_at_dequeue=True,
            on_shed=lambda item, where: expire_request(item, where)))

    # -- lifecycle -------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.watchdog.start()

    def shutdown(self) -> None:
        """Quiesce tracked components, then the watchdog itself."""
        for obj in self._stoppables:
            obj.stop()
        self.watchdog.stop()

    # -- reporting -------------------------------------------------------
    @property
    def stall_reports(self) -> list[StallReport]:
        return self.watchdog.reports

    def health_metrics(self) -> dict[str, int]:
        out = {
            "stalls_detected": int(self.watchdog.stalls_detected.total),
            "watchdog_scans": int(self.watchdog.scans.total),
        }
        if self.integrity is not None:
            out.update(self.integrity.metrics())
        return out
