"""Pipeline supervision: watchdogs, deadline shedding, integrity.

PR-1 gave the offload pipeline fault *injection* and decode-path
*recovery* (retransmit table, circuit breaker, quarantine).  This
package adds the third leg a production serving system needs —
*detection and overload safety*:

* :class:`Watchdog` + :class:`Heartbeat` — stalled or deadlocked
  pipeline stages are detected within a configured threshold and
  diagnosed with a :class:`StallReport` naming who waits on which
  channel.
* :class:`SupervisionConfig` deadlines + :class:`~repro.sim.ShedPolicy`
  — requests carry absolute deadlines; expired work is shed at the NIC
  RX queue, the FPGAReader and the Dispatcher instead of being decoded
  and copied for nothing, keeping p99 bounded under overload (see
  ``repro.experiments.overload``).
* :class:`IntegrityChecker` — items are checksummed at ingest and
  verified after decode, so silent payload corruption is quarantined,
  never batched.

The :class:`Supervisor` facade wires all three into the training and
inference workflows.  A disabled supervisor is byte-identical to no
supervisor.
"""

from .heartbeat import Heartbeat, StallReport
from .integrity import IntegrityChecker
from .supervisor import (DeadlineExceeded, SupervisionConfig, Supervisor,
                         expire_request)
from .watchdog import PipelineStallError, Watchdog

__all__ = ["Heartbeat", "StallReport", "Watchdog", "PipelineStallError",
           "IntegrityChecker", "SupervisionConfig", "Supervisor",
           "DeadlineExceeded", "expire_request"]
