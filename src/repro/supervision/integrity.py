"""End-to-end payload integrity: stamp at ingest, verify after decode.

The fault layer can corrupt a JPEG in ways the decoder *notices* (a
broken marker raises a typed :class:`~repro.jpeg.JpegDecodeError` and
the item is quarantined) — but bit flips inside the entropy-coded scan
often still parse, and the ``payload_bitflip`` fault models exactly
that: the decoder reports a successful FINISH over garbage pixels.
Nothing downstream would ever know.

The :class:`IntegrityChecker` closes that hole: the DataCollector
stamps a CRC-32 checksum on every item the moment it enters the
pipeline, and the FPGAReader re-verifies the bytes that actually
travelled with the cmd when the ok-FINISH arrives.  A mismatch routes
the item into the quarantine path (reason ``integrity-mismatch``)
instead of a training/inference batch, and is counted separately so
the conservation invariant stays checkable::

    accepted == fpga_decoded + cpu_failover + quarantined
                + shed_expired + integrity_rejected

Items without payload bytes (modeled-mode manifests) get a metadata
fingerprint — enough to keep the bookkeeping uniform, though only real
payloads give real corruption detection.
"""

from __future__ import annotations

import zlib
from typing import Optional

from ..sim import Counter, Environment

__all__ = ["IntegrityChecker"]


class IntegrityChecker:
    """CRC-32 stamp/verify pair guarding the decode path end to end."""

    def __init__(self, env: Environment, name: str = "integrity"):
        self.env = env
        self.name = name
        self.stamped = Counter(env, name=f"{name}.stamped")
        self.verified = Counter(env, name=f"{name}.verified")
        self.mismatches = Counter(env, name=f"{name}.mismatches")

    @staticmethod
    def digest(payload: Optional[bytes], size_bytes: int,
               work_pixels: int) -> int:
        if payload is not None:
            return zlib.crc32(payload)
        # Modeled mode: no bytes to hash, fingerprint the metadata the
        # cmd carries so the stamp/verify protocol stays uniform.
        meta = f"{size_bytes}:{work_pixels}".encode()
        return zlib.crc32(meta)

    def stamp(self, item) -> None:
        """Checksum ``item`` at ingest (DataCollector boundary)."""
        item.checksum = self.digest(item.payload, item.size_bytes,
                                    item.work_pixels)
        self.stamped.add()

    def verify(self, item, payload: Optional[bytes],
               size_bytes: Optional[int] = None,
               work_pixels: Optional[int] = None) -> bool:
        """Re-hash the bytes (or, modeled mode, the metadata) that
        actually travelled with the cmd against the ingest stamp.
        Unstamped items pass vacuously."""
        if getattr(item, "checksum", None) is None:
            return True
        self.verified.add()
        ok = self.digest(
            payload,
            item.size_bytes if size_bytes is None else size_bytes,
            item.work_pixels if work_pixels is None else work_pixels,
        ) == item.checksum
        if not ok:
            self.mismatches.add()
        return ok

    def metrics(self) -> dict[str, int]:
        return {
            "integrity_stamped": int(self.stamped.total),
            "integrity_verified": int(self.verified.total),
            "integrity_mismatches": int(self.mismatches.total),
        }
