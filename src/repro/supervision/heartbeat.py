"""Per-stage liveness handles for the pipeline watchdog.

Every supervised pipeline process (FPGAReader, Dispatcher, solvers,
DataCollector) owns one :class:`Heartbeat` and reports three things
through it: *progress* (one unit of work completed), *waiting* (about to
block on a named channel) and *idle* (legitimately quiescent, e.g.
between epochs).  The watchdog reads these handles; it never calls into
the stage itself, so a dead stage cannot hide from it.

Stages hold ``heartbeat=None`` by default and guard every call with an
``is not None`` test — an unsupervised pipeline pays one attribute test
per hook and behaves bit-identically to a build without this subsystem.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim import Environment

__all__ = ["Heartbeat", "StallReport"]


@dataclass(frozen=True)
class StallReport:
    """Structured diagnosis of one stall episode.

    Names *who* is stuck (``stage``), *what it is doing* (``state``),
    *which channel it waits on* (``waiting_on``, None for a busy-stuck
    stage), for how long, and the stage's lifetime progress count — plus
    a snapshot of watched queue depths, so a starved queue and its
    non-feeding producer can be read off one report.
    """

    when: float
    stage: str
    state: str                      # "waiting" | "running"
    waiting_on: str | None          # channel name when state == "waiting"
    stalled_for_s: float
    progress: int
    queue_depths: dict[str, int] = field(default_factory=dict)

    def render(self) -> str:
        what = (f"waiting on '{self.waiting_on}'" if self.waiting_on
                else "running without progress")
        depths = ""
        if self.queue_depths:
            depths = "; queues " + ", ".join(
                f"{name}={depth}" for name, depth
                in sorted(self.queue_depths.items()))
        return (f"[t={self.when:.4f}s] stage '{self.stage}' stalled "
                f"{self.stalled_for_s:.4f}s {what} after "
                f"{self.progress} items{depths}")


class Heartbeat:
    """One stage's liveness state, updated by the stage, read by the
    watchdog."""

    IDLE = "idle"
    RUNNING = "running"
    WAITING = "waiting"

    def __init__(self, env: Environment, name: str):
        self.env = env
        self.name = name
        self.progress_count = 0
        self.last_progress_t = env.now
        self.state = self.IDLE
        self.waiting_on: str | None = None
        self.state_since = env.now
        # One report per stall episode; re-armed by any progress.
        self.stall_reported = False

    def progress(self, n: int = 1) -> None:
        """One (or ``n``) unit(s) of work completed."""
        self.progress_count += n
        self.last_progress_t = self.env.now
        self.state = self.RUNNING
        self.waiting_on = None
        self.state_since = self.env.now
        self.stall_reported = False

    def waiting(self, on: str) -> None:
        """About to block on the channel named ``on``."""
        self.state = self.WAITING
        self.waiting_on = str(on)
        self.state_since = self.env.now
        self.stall_reported = False

    def running(self) -> None:
        """Unblocked; doing work (no progress yet)."""
        self.state = self.RUNNING
        self.waiting_on = None
        self.state_since = self.env.now

    def idle(self) -> None:
        """Legitimately quiescent (between epochs, after stop()); the
        watchdog will not flag an idle stage."""
        self.state = self.IDLE
        self.waiting_on = None
        self.state_since = self.env.now

    def stalled_for(self, now: float) -> float:
        """Seconds without forward signs of life, per current state."""
        if self.state == self.WAITING:
            return now - self.state_since
        if self.state == self.RUNNING:
            return now - max(self.last_progress_t, self.state_since)
        return 0.0
