"""Compute engines: GPU/stream models, the model zoo, training and
inference loops, and the accounted CPU core pool."""

from .cpu import CpuCorePool
from .gpu import CudaStream, GpuDevice
from .inference import InferenceEngine
from .models import (allreduce_seconds, get_model, inference_batch_seconds,
                     inference_rate, train_iteration_seconds)
from .training import DeviceBatch, SyncGroup, TrainingSolver

__all__ = ["GpuDevice", "CudaStream", "CpuCorePool", "DeviceBatch",
           "SyncGroup", "TrainingSolver", "InferenceEngine", "get_model",
           "train_iteration_seconds", "inference_rate",
           "inference_batch_seconds", "allreduce_seconds"]
