"""DL-model cost helpers built on the calibrated specs."""

from __future__ import annotations

from ..calib import INFER_MODELS, TRAIN_MODELS, GpuModelSpec, Testbed

__all__ = ["get_model", "train_iteration_seconds", "inference_rate",
           "inference_batch_seconds", "allreduce_seconds"]


def get_model(name: str) -> GpuModelSpec:
    """Look up a model spec in either the training or inference zoo."""
    if name in TRAIN_MODELS:
        return TRAIN_MODELS[name]
    if name in INFER_MODELS:
        return INFER_MODELS[name]
    raise KeyError(f"unknown model {name!r}; known: "
                   f"{sorted(TRAIN_MODELS) + sorted(INFER_MODELS)}")


def train_iteration_seconds(spec: GpuModelSpec, batch_size: int) -> float:
    """Forward + backward GPU time for one iteration on one GPU."""
    if spec.train_rate <= 0:
        raise ValueError(f"{spec.name} has no training calibration")
    return batch_size / spec.train_rate


def inference_rate(spec: GpuModelSpec, batch_size: int) -> float:
    """Engine throughput (img/s) at a given batch size.

    Saturating-law form: rate(b) = peak * b / (b + half_sat); at small
    batches the engine is kernel-launch bound, at large batches it
    approaches peak — the growth every curve of Fig. 7 shows.
    """
    if spec.peak_rate <= 0:
        raise ValueError(f"{spec.name} has no inference calibration")
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    return spec.peak_rate * batch_size / (batch_size + spec.half_sat_batch)


def inference_batch_seconds(spec: GpuModelSpec, batch_size: int) -> float:
    """GPU time to infer one batch."""
    return batch_size / inference_rate(spec, batch_size)


def allreduce_seconds(spec: GpuModelSpec, world: int,
                      testbed: Testbed) -> float:
    """Ring-allreduce time for one gradient exchange.

    Classic ring cost: each rank moves 2*(n-1)/n of the buffer.
    """
    if world <= 1:
        return 0.0
    return (2.0 * (world - 1) / world) * spec.param_bytes \
        / testbed.allreduce_rate
