"""TensorRT-like online inference engine (S5.3).

Consumes device batches from its Trans Queues, runs the fp16 engine
(saturating batch-rate law), completes each request's ``done_event`` and
records the serving latency "from the point when the inference system
receives pictures ... to the point when engines make a prediction".
"""

from __future__ import annotations

from ..calib import GpuModelSpec, Testbed
from ..sim import Counter, Environment, LatencyRecorder, QueuePair
from .cpu import CpuCorePool
from .gpu import GpuDevice
from .models import inference_batch_seconds
from .training import DeviceBatch

__all__ = ["InferenceEngine"]


class InferenceEngine:
    """One GPU's serving loop."""

    TRANS_DEPTH = 3

    def __init__(self, env: Environment, gpu: GpuDevice, spec: GpuModelSpec,
                 cpu: CpuCorePool, testbed: Testbed, batch_size: int):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.env = env
        self.gpu = gpu
        self.spec = spec
        self.cpu = cpu
        self.testbed = testbed
        self.batch_size = batch_size
        item_bytes = spec.input_hw[0] * spec.input_hw[1] * spec.channels
        self.trans = QueuePair(env, capacity=self.TRANS_DEPTH,
                               name=f"{gpu.name}.trans")
        self.trans.seed([
            DeviceBatch(device_addr=0xA000_0000 + i * 0x200_0000,
                        capacity_bytes=item_bytes * batch_size,
                        gpu_index=gpu.index)
            for i in range(self.TRANS_DEPTH)])
        self.predictions = Counter(env, name=f"{gpu.name}.predictions")
        self.batches = Counter(env, name=f"{gpu.name}.batches")
        self.latency = LatencyRecorder(name=f"{gpu.name}.latency")
        self.copy_stream = gpu.copy_stream
        self.heartbeat = None   # set by a Supervisor when supervised
        self._proc = None

    @property
    def trans_queues(self) -> QueuePair:
        return self.trans

    def start(self) -> None:
        if self._proc is not None:
            raise RuntimeError("engine already started")
        self._proc = self.env.process(self._loop(),
                                      name=f"infer-{self.gpu.index}")

    def _loop(self):
        tb = self.testbed
        while True:
            if self.heartbeat is not None:
                self.heartbeat.waiting(self.trans.full.name)
            batch: DeviceBatch = yield from self.trans.full.get()
            if self.heartbeat is not None:
                self.heartbeat.running()
            items = batch.payload or []
            if items and getattr(items[0], "trace", None) is not None:
                for item in items:
                    trace = getattr(item, "trace", None)
                    if trace is not None and not trace.is_finished:
                        trace.mark("gpu.compute", "service")
            n = batch.item_count or self.batch_size
            compute_s = inference_batch_seconds(self.spec, n)
            # Host thread issues one launch per layer-kernel (Fig. 9's
            # residual CPU cost for the offloaded backends); enqueue work
            # cannot exceed the kernel wall time in steady state.
            self.cpu.charge_unaccounted(
                min(self.spec.launches_per_batch * tb.cuda_launch_overhead_s,
                    compute_s),
                "kernels")
            kernel = self.gpu.run_compute(compute_s, "infer")
            yield kernel
            now = self.env.now
            for item in items:
                request = getattr(item, "request", None) or item
                done = getattr(request, "done_event", None)
                if done is not None and not done.triggered:
                    done.succeed()
                trace = getattr(item, "trace", None)
                received = getattr(request, "received_at", None)
                if received is not None:
                    self.latency.record(
                        now - received,
                        trace_id=trace.trace_id if trace is not None
                        else None)
                if trace is not None and not trace.is_finished:
                    trace.finish("ok")
            self.predictions.add(n)
            self.batches.add()
            self.gpu.images_in.add(n)
            if self.heartbeat is not None:
                self.heartbeat.progress()
            batch.reset()
            yield from self.trans.free.put(batch)

    def throughput(self, since: float = 0.0) -> float:
        elapsed = self.env.now - since
        return self.predictions.total / elapsed if elapsed > 0 else 0.0
