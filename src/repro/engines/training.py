"""Data-parallel training solvers (the NVCaffe compute engine of S5.2).

Each GPU hosts one :class:`TrainingSolver`; solvers consume device
batches from their Trans Queues (filled by the backend's dispatcher or
loader), run forward+backward, synchronize gradients through a ring
allreduce, apply the update, and recycle the device buffer — "every GPU
device is isolated from the others and fetches data from its individual
pipeline" (S3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..calib import GpuModelSpec, Testbed
from ..sim import Counter, Environment, QueuePair
from .cpu import CpuCorePool
from .gpu import GpuDevice
from .models import allreduce_seconds, train_iteration_seconds

__all__ = ["DeviceBatch", "SyncGroup", "TrainingSolver"]


@dataclass
class DeviceBatch:
    """A pre-allocated device-memory buffer cycling through Trans Queues."""

    device_addr: int
    capacity_bytes: int
    gpu_index: int
    payload: object = None
    item_count: int = 0
    tag: object = field(default=None)

    def reset(self) -> None:
        self.payload = None
        self.item_count = 0
        self.tag = None


class SyncGroup:
    """Gradient-synchronization barrier + ring allreduce timing."""

    def __init__(self, env: Environment, world: int, spec: GpuModelSpec,
                 testbed: Testbed):
        if world < 1:
            raise ValueError("world must be >= 1")
        self.env = env
        self.world = world
        self.spec = spec
        self.testbed = testbed
        self._arrived = 0
        self._release = env.event()
        self.rounds = 0

    def arrive(self):
        """Generator: rendezvous, then pay the allreduce cost together."""
        if self.world == 1:
            return
        self._arrived += 1
        release = self._release
        if self._arrived == self.world:
            self._arrived = 0
            self._release = self.env.event()
            self.rounds += 1
            self.env.process(self._do_allreduce(release))
        yield release

    def _do_allreduce(self, release):
        yield self.env.timeout(
            allreduce_seconds(self.spec, self.world, self.testbed))
        release.succeed()


class TrainingSolver:
    """One GPU's training loop."""

    # Device-side buffers per solver; 3 gives copy/compute overlap
    # headroom without hoarding device memory.
    TRANS_DEPTH = 3

    def __init__(self, env: Environment, gpu: GpuDevice, spec: GpuModelSpec,
                 sync: SyncGroup, cpu: CpuCorePool, testbed: Testbed,
                 batch_size: Optional[int] = None):
        self.env = env
        self.gpu = gpu
        self.spec = spec
        self.sync = sync
        self.cpu = cpu
        self.testbed = testbed
        self.batch_size = batch_size or spec.batch_size
        item_bytes = spec.input_hw[0] * spec.input_hw[1] * spec.channels
        self.trans = QueuePair(env, capacity=self.TRANS_DEPTH,
                               name=f"{gpu.name}.trans")
        self.trans.seed([
            DeviceBatch(device_addr=0x9000_0000 + i * 0x400_0000,
                        capacity_bytes=item_bytes * self.batch_size,
                        gpu_index=gpu.index)
            for i in range(self.TRANS_DEPTH)])
        self.images_trained = Counter(env, name=f"{gpu.name}.trained")
        self.iterations = Counter(env, name=f"{gpu.name}.iters")
        self.copy_stream = gpu.copy_stream
        self.heartbeat = None   # set by a Supervisor when supervised
        self._proc = None

    @property
    def trans_queues(self) -> QueuePair:
        return self.trans

    def start(self) -> None:
        if self._proc is not None:
            raise RuntimeError("solver already started")
        self._proc = self.env.process(self._loop(),
                                      name=f"solver-{self.gpu.index}")

    def _loop(self):
        tb = self.testbed
        while True:
            if self.heartbeat is not None:
                self.heartbeat.waiting(self.trans.full.name)
            batch: DeviceBatch = yield from self.trans.full.get()
            if self.heartbeat is not None:
                self.heartbeat.running()
            items = batch.payload if isinstance(batch.payload, list) else []
            if items and getattr(items[0], "trace", None) is not None:
                for item in items:
                    trace = getattr(item, "trace", None)
                    if trace is not None and not trace.is_finished:
                        trace.mark("gpu.compute", "service")
            n = batch.item_count or self.batch_size
            # Forward + backward.
            compute_s = train_iteration_seconds(self.spec, n)
            kernel = self.gpu.run_compute(compute_s, "train")
            # The solver thread spins launching kernels while the GPU runs
            # (the 0.95-core component of Fig. 6d).
            self.cpu.charge_unaccounted(
                compute_s * tb.kernel_launch_core_frac, "kernels")
            yield kernel
            # Gradient synchronization across the data-parallel group.
            yield from self.sync.arrive()
            # Parameter update (GPU-trivial; CPU-side solver bookkeeping
            # is the 0.12-core component of Fig. 6d).
            self.cpu.charge_unaccounted(
                compute_s * tb.model_update_core_frac, "update")
            self.images_trained.add(n)
            self.iterations.add()
            for item in items:
                trace = getattr(item, "trace", None)
                if trace is not None and not trace.is_finished:
                    trace.finish("ok")
            if self.heartbeat is not None:
                self.heartbeat.progress()
            batch.reset()
            yield from self.trans.free.put(batch)

    def throughput(self, since: float = 0.0) -> float:
        elapsed = self.env.now - since
        return self.images_trained.total / elapsed if elapsed > 0 else 0.0
