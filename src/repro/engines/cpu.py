"""CPU core pool with busy-core accounting.

The pool enforces the server's physical core count (32, S5.1) — the
constraint behind the paper's scalability argument (S2.2: "the demands
on CPU cores to fully boost GPUs' performance have already exceeded
what such servers can offer") — and integrates busy time into the
"cores burned" metric of Figs. 2(b), 6 and 9.
"""

from __future__ import annotations

from ..sim import BusyTracker, Environment, Resource

__all__ = ["CpuCorePool"]


class CpuCorePool:
    """``capacity`` physical cores shared by every host-side activity."""

    def __init__(self, env: Environment, cores: int, name: str = "cpu"):
        if cores < 1:
            raise ValueError(f"cores must be >= 1, got {cores}")
        self.env = env
        self.cores = cores
        self.name = name
        self._res = Resource(env, capacity=cores, name=name)
        self.tracker = BusyTracker(env, name=f"{name}.busy")

    def run(self, duration: float, category: str = "work"):
        """Generator: occupy one core for ``duration`` seconds."""
        if duration < 0:
            raise ValueError("negative duration")
        if duration == 0:
            return
        grant = self._res.request()
        yield grant
        tok = self.tracker.begin(category)
        try:
            yield self.env.timeout(duration)
        finally:
            self.tracker.end(tok)
            self._res.release(grant)

    def charge_unaccounted(self, duration: float,
                           category: str = "work") -> None:
        """Record busy time that does not contend for a core slot (thin
        interrupt-style work folded into other threads)."""
        self.tracker.charge(duration, category)

    # -- measurement ----------------------------------------------------
    def cores_used(self, category: str | None = None) -> float:
        return self.tracker.cores(category)

    def breakdown(self) -> dict[str, float]:
        return self.tracker.breakdown()

    @property
    def busy_now(self) -> int:
        return self._res.count

    @property
    def waiting(self) -> int:
        return self._res.queue_len
