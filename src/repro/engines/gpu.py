"""GPU device and CUDA-stream models.

The device exposes the two behaviours the experiments hinge on:

* **async streams** — copies and kernels submitted to a stream execute
  in order while the submitting host thread continues (the Dispatcher's
  ``CudaMemcpyAsync`` / ``CudaStreamSync`` pattern, Algorithm 3);
* **SM contention** — decode kernels (nvJPEG) occupy a share of SMs
  while active, stretching concurrent compute kernels by
  ``1 / (1 - share)`` — the mechanism behind the paper's "nvJPEG can
  dominate 40% GPU utilization ... downgrading the GPU performance in
  model computation by more than 30%" (S2.2).
"""

from __future__ import annotations

from typing import Optional

from ..calib import Testbed
from ..sim import BusyTracker, Channel, Counter, Environment, Event

__all__ = ["CudaStream", "GpuDevice"]


class CudaStream:
    """In-order asynchronous work queue on one GPU."""

    def __init__(self, env: Environment, gpu: "GpuDevice", name: str):
        self.env = env
        self.gpu = gpu
        self.name = name
        self._ops = Channel(env, capacity=float("inf"), name=name)
        self._idle_evt: Optional[Event] = None
        self._pending = 0
        env.process(self._engine(), name=name)

    def submit(self, duration: float, category: str = "op") -> Event:
        """Enqueue an operation; returns the event fired on completion."""
        if duration < 0:
            raise ValueError("negative op duration")
        done = self.env.event()
        self._pending += 1
        self._ops.try_put((duration, category, done))
        return done

    def synchronize(self):
        """Generator: block until every submitted op has completed."""
        if self._pending == 0:
            return
        self._idle_evt = self.env.event()
        yield self._idle_evt

    def _engine(self):
        while True:
            duration, category, done = yield from self._ops.get()
            tok = self.gpu.busy.begin(category)
            yield self.env.timeout(duration)
            self.gpu.busy.end(tok)
            self._pending -= 1
            done.succeed()
            if self._pending == 0 and self._idle_evt is not None:
                evt, self._idle_evt = self._idle_evt, None
                evt.succeed()


class GpuDevice:
    """One Tesla P100 with PCIe copy engine and SM-share bookkeeping."""

    def __init__(self, env: Environment, testbed: Testbed, index: int = 0,
                 name: str | None = None):
        self.env = env
        self.testbed = testbed
        self.index = index
        # ``name`` override lets K-host fleets namespace their devices
        # (``host02.gpu0``); the default keeps single-host names flat.
        self.name = name if name is not None else f"gpu{index}"
        self.busy = BusyTracker(env, name=f"{self.name}.busy")
        self.copy_stream = CudaStream(env, self, f"{self.name}.copy")
        self.compute_stream = CudaStream(env, self, f"{self.name}.compute")
        self.decode_stream = CudaStream(env, self, f"{self.name}.decode")
        self.images_in = Counter(env, name=f"{self.name}.images")
        self._decode_kernels_active = 0
        self._decode_share = 0.0
        self._decode_busy = BusyTracker(env, name=f"{self.name}.dec-busy")
        self._decode_tokens: list[int] = []
        self._penalty_mark_t = env.now
        self._penalty_mark_busy = 0.0

    # -- copies ---------------------------------------------------------
    def memcpy_async(self, nbytes: int) -> Event:
        """Host->device copy on the copy stream (returns completion event)."""
        if nbytes <= 0:
            raise ValueError("copy size must be positive")
        return self.copy_stream.submit(nbytes / self.testbed.pcie_copy_rate,
                                       "memcpy")

    # -- contention ------------------------------------------------------
    def begin_decode_kernel(self, share: float) -> None:
        if not 0 < share < 1:
            raise ValueError(f"share must be in (0, 1), got {share}")
        self._decode_kernels_active += 1
        self._decode_share = share
        self._decode_tokens.append(self._decode_busy.begin("active"))

    def end_decode_kernel(self) -> None:
        if self._decode_kernels_active <= 0:
            raise RuntimeError("end_decode_kernel without begin")
        self._decode_kernels_active -= 1
        self._decode_busy.end(self._decode_tokens.pop())

    def decode_active_fraction(self) -> float:
        """Fraction of time decode kernels were resident since the last
        penalty query — the time-averaged SM steal."""
        now = self.env.now
        busy = self._decode_busy.busy_seconds("active")
        dt = now - self._penalty_mark_t
        if dt <= 0:
            return 1.0 if self._decode_kernels_active > 0 else 0.0
        frac = (busy - self._penalty_mark_busy) / dt
        self._penalty_mark_t = now
        self._penalty_mark_busy = busy
        return min(max(frac, 0.0), 1.0)

    def compute_penalty(self) -> float:
        """Stretch factor for a compute kernel launched now.

        Uses the decode units' *time-averaged* residency since the last
        launch (instantaneous sampling correlates with decode-gap
        instants and systematically misses the contention).
        """
        frac = self.decode_active_fraction()
        if frac <= 0.0:
            return 1.0
        return 1.0 / (1.0 - self._decode_share * frac)

    def run_compute(self, base_seconds: float,
                    category: str = "compute") -> Event:
        """Launch a compute kernel subject to current decode contention."""
        return self.compute_stream.submit(
            base_seconds * self.compute_penalty(), category)

    # -- measurement ----------------------------------------------------
    def utilization(self, category: Optional[str] = None) -> float:
        return self.busy.cores(category)
