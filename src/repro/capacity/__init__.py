"""``python -m repro.capacity`` — the what-if capacity planner CLI.

A thin entry point over :mod:`repro.slo.planner`; the planning logic —
spec, binary search, dashboard rendering — lives there so library
callers and the CLI share one implementation.
"""

from ..slo.planner import (CapacityPlan, PlanSpec, plan_capacity,
                           render_dashboard)

__all__ = ["PlanSpec", "CapacityPlan", "plan_capacity",
           "render_dashboard"]
