"""CLI: what fleet serves rate R at p99 < X ms within the error budget?

Usage:
    python -m repro.capacity --rate-x 1.8 --p99-ms 25
    python -m repro.capacity --rate 50000 --k-max 8 --seeds 3 --parallel 4
    python -m repro.capacity --rate-x 2.7 --out-dir capacity-report

Each candidate fleet size runs the PR 6 fleet serving scenario
(multi-seed, fanned out via repro.sweep); the answer — per-K KPI table,
SLO verdicts, burn-rate alert timeline, recommended K with headroom —
is printed and written as a deterministic markdown + JSON dashboard.

Exit codes: 0 = a feasible K was found, 1 = no K in range meets the
objectives, 2 = an output directory or file could not be written.
"""

from __future__ import annotations

import argparse
import os
import sys

from ..slo.planner import PlanSpec, plan_capacity, render_dashboard


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.capacity", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    rate = parser.add_mutually_exclusive_group()
    rate.add_argument("--rate", type=float, default=None, metavar="IMG_S",
                      help="offered load in images/second")
    rate.add_argument("--rate-x", type=float, default=1.8, metavar="X",
                      help="offered load as a multiple of the "
                           "single-host knee (default: 1.8)")
    parser.add_argument("--p99-ms", type=float, default=25.0,
                        help="client-perceived p99 target, ms "
                             "(default: the serving deadline, 25)")
    parser.add_argument("--availability", type=float, default=0.99,
                        help="availability SLO target (default: 0.99)")
    parser.add_argument("--latency-target", type=float, default=0.99,
                        help="required fraction of requests completing "
                             "within the deadline (default: 0.99)")
    parser.add_argument("--k-min", type=int, default=1)
    parser.add_argument("--k-max", type=int, default=6)
    parser.add_argument("--seeds", type=int, default=1, metavar="N",
                        help="seeds per candidate K (base-seed offsets)")
    parser.add_argument("--base-seed", type=int, default=23)
    parser.add_argument("--sim-s", type=float, default=1.0,
                        help="simulated horizon per run (default: 1.0)")
    parser.add_argument("--policy", default="least-loaded")
    parser.add_argument("--parallel", type=int, default=1, metavar="N",
                        help="fan per-K seeds out to N worker processes")
    parser.add_argument("--out-dir", default=None, metavar="DIR",
                        help="write dashboard.md + dashboard.json here")
    args = parser.parse_args(argv)

    if args.seeds < 1:
        parser.error(f"--seeds must be >= 1, got {args.seeds}")
    if args.parallel < 1:
        parser.error(f"--parallel must be >= 1, got {args.parallel}")

    # Fail on an unwritable --out-dir before burning simulation time.
    if args.out_dir is not None:
        try:
            os.makedirs(args.out_dir, exist_ok=True)
        except OSError as exc:
            print(f"cannot create --out-dir {args.out_dir!r}: {exc}",
                  file=sys.stderr)
            return 2

    if args.rate is not None:
        offered = args.rate
    else:
        from ..experiments.fleet import single_host_knee
        offered = args.rate_x * single_host_knee()

    spec = PlanSpec(
        rate=offered, p99_ms=args.p99_ms,
        availability=args.availability,
        latency_target=args.latency_target,
        k_min=args.k_min, k_max=args.k_max,
        seeds=tuple(args.base_seed + i for i in range(args.seeds)),
        sim_s=args.sim_s, policy=args.policy)

    print(f"capacity plan: {offered:,.0f} img/s at p99 < "
          f"{args.p99_ms:g} ms, availability {args.availability:.2%}, "
          f"K in [{args.k_min}, {args.k_max}], "
          f"{args.seeds} seed(s), parallel={args.parallel}")
    plan = plan_capacity(spec, parallel=args.parallel, progress=print)

    dashboard = render_dashboard(plan)
    print()
    print(dashboard)

    if args.out_dir is not None:
        try:
            with open(os.path.join(args.out_dir, "dashboard.md"),
                      "w") as fh:
                fh.write(dashboard)
            with open(os.path.join(args.out_dir, "dashboard.json"),
                      "w") as fh:
                fh.write(plan.to_json())
                fh.write("\n")
        except OSError as exc:
            print(f"cannot write dashboard: {exc}", file=sys.stderr)
            return 2
        print(f"dashboard -> {args.out_dir}/dashboard.md, "
              f"{args.out_dir}/dashboard.json")

    return 0 if plan.feasible else 1


if __name__ == "__main__":
    sys.exit(main())
