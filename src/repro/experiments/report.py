"""Experiment report infrastructure: paper-style rows + shape checks.

Every experiment module produces a :class:`Report` — a titled table of
measured rows plus a list of :class:`ShapeCheck` assertions encoding the
paper's qualitative claims (who wins, by what factor, where crossovers
fall).  Benchmarks print the table and assert the checks, so a
regression in any reproduced result fails CI rather than silently
drifting.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

__all__ = ["Report", "ShapeCheck", "fmt_table", "timed"]


@dataclass
class ShapeCheck:
    """One qualitative claim from the paper, evaluated on measured data."""

    claim: str                   # e.g. "LMDB loses ~30% at 2 GPUs"
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.claim}" + (f" — {self.detail}"
                                           if self.detail else "")


@dataclass
class Report:
    """A reproduced table/figure: rows + shape checks."""

    experiment_id: str           # "fig5a", "fig7c", "sec5.4", ...
    title: str
    columns: Sequence[str]
    rows: list[Sequence] = field(default_factory=list)
    checks: list[ShapeCheck] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    # Wall-clock accounting for the run that produced this report (set
    # by :func:`timed` / :meth:`set_perf`) — real seconds, never part of
    # the simulated metrics.
    perf: dict = field(default_factory=dict)
    # ``repro-kpi/1`` payloads keyed by scenario label — the derived
    # decision-layer numbers the CLI's --kpi-json flag exports.
    kpis: dict = field(default_factory=dict)

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(f"row width {len(values)} != "
                             f"{len(self.columns)} columns")
        self.rows.append(values)

    def check(self, claim: str, condition: bool, detail: str = "") -> None:
        self.checks.append(ShapeCheck(claim, bool(condition), detail))

    def set_perf(self, wall_s: float, events: Optional[int] = None) -> None:
        """Record how long the run took on the wall clock.

        ``events`` is the number of kernel events processed (all
        Environments the run created); events/s is the sim-kernel
        throughput figure tracked by the perf benchmarks.
        """
        self.perf = {"wall_s": wall_s}
        if events is not None:
            self.perf["events"] = int(events)
            self.perf["events_per_s"] = (events / wall_s if wall_s > 0
                                         else 0.0)

    @property
    def all_passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def failed_checks(self) -> list[ShapeCheck]:
        return [c for c in self.checks if not c.passed]

    def to_csv(self) -> str:
        """Rows as CSV (for downstream plotting tools)."""
        import csv
        import io
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(self.columns)
        writer.writerows(self.rows)
        return buf.getvalue()

    def to_json(self) -> str:
        """The whole report — rows, checks, notes — as one JSON document
        (the machine-readable sibling of :meth:`render`)."""
        import json

        def cell(value):
            if isinstance(value, float) and (value != value
                                             or value in (float("inf"),
                                                          float("-inf"))):
                return None
            return value

        return json.dumps({
            "schema": "repro-report/1",
            "experiment_id": self.experiment_id,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [[cell(v) for v in row] for row in self.rows],
            "checks": [{"claim": c.claim, "passed": c.passed,
                        "detail": c.detail} for c in self.checks],
            "notes": list(self.notes),
            "all_passed": self.all_passed,
            "perf": {k: cell(v) for k, v in self.perf.items()},
        }, indent=2, allow_nan=False, default=str)

    def kpis_json(self) -> str:
        """The attached per-scenario ``repro-kpi/1`` payloads as one
        strict-JSON document (what ``--kpi-json`` writes)."""
        from ..slo import kpi_json
        return kpi_json({"schema": "repro-kpi-set/1",
                         "experiment_id": self.experiment_id,
                         "kpis": self.kpis})

    def render(self) -> str:
        out = [f"== {self.experiment_id}: {self.title} =="]
        out.append(fmt_table(self.columns, self.rows))
        for note in self.notes:
            out.append(f"  note: {note}")
        for check in self.checks:
            out.append(f"  {check}")
        if self.perf:
            line = f"  perf: {self.perf['wall_s']:.2f}s wall"
            if "events" in self.perf:
                line += (f", {self.perf['events']:,} events "
                         f"({self.perf['events_per_s']:,.0f}/s)")
            out.append(line)
        return "\n".join(out)

    def __str__(self) -> str:
        return self.render()


def timed(fn: Callable[..., "Report"]) -> Callable[..., "Report"]:
    """Decorator for experiment runners: stamp the returned report with
    wall seconds and kernel events processed (perf_counter, so NTP steps
    mid-run cannot corrupt the accounting)."""
    @functools.wraps(fn)
    def wrapper(*args, **kwargs) -> "Report":
        from ..sim.core import total_events_processed
        t0 = time.perf_counter()
        ev0 = total_events_processed()
        report = fn(*args, **kwargs)
        report.set_perf(time.perf_counter() - t0,
                        total_events_processed() - ev0)
        return report
    return wrapper


def _fmt_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def fmt_table(columns: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Plain-text aligned table."""
    cells = [[_fmt_cell(v) for v in row] for row in rows]
    widths = [max(len(str(col)), *(len(r[i]) for r in cells))
              if cells else len(str(col))
              for i, col in enumerate(columns)]
    def line(vals):
        return "  ".join(str(v).rjust(w) for v, w in zip(vals, widths))
    sep = "  ".join("-" * w for w in widths)
    body = [line(columns), sep]
    body.extend(line(r) for r in cells)
    return "\n".join(body)
