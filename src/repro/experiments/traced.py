"""Traced smoke runs — Chrome-trace exports for the tracing layer.

``python -m repro.experiments --trace-dir traces`` runs one traced
DLBooster serving experiment and one traced DLBooster training
experiment with :mod:`repro.tracing` armed, and writes their
Chrome-trace JSON files into the given directory.  Open them at
https://ui.perfetto.dev (or ``chrome://tracing``): per-request spans
appear on ``req.*`` tracks, batch fan-in on ``batch.assembly``, flow
arrows stitch each request's causal chain, and the telemetry queue
depths ride along as counter tracks.
"""

from __future__ import annotations

import os

from ..telemetry import TelemetryConfig
from ..tracing import TracingConfig
from ..workflows import (InferenceConfig, TrainingConfig, run_inference,
                         run_training)

__all__ = ["run_traced_smoke"]


def run_traced_smoke(trace_dir: str, quick: bool = True) -> dict[str, str]:
    """Run the traced smoke pair and export their Chrome traces.

    Returns ``{run name: exported file path}``.  Windows are short —
    this is a smoke of the tracing export path, not a measurement.
    """
    os.makedirs(trace_dir, exist_ok=True)
    out: dict[str, str] = {}

    infer_path = os.path.join(trace_dir, "inference_dlbooster.json")
    infer_cfg = InferenceConfig(
        model="googlenet", backend="dlbooster", batch_size=8,
        warmup_s=0.2 if quick else 1.0,
        measure_s=0.6 if quick else 4.0,
        telemetry=TelemetryConfig(),
        tracing=TracingConfig(export_path=infer_path))
    infer_res = run_inference(infer_cfg)
    out["inference_dlbooster"] = infer_path

    train_path = os.path.join(trace_dir, "training_dlbooster.json")
    train_cfg = TrainingConfig(
        model="alexnet", backend="dlbooster",
        warmup_s=0.5 if quick else 2.0,
        measure_s=1.0 if quick else 6.0,
        telemetry=TelemetryConfig(),
        tracing=TracingConfig(export_path=train_path))
    train_res = run_training(train_cfg)
    out["training_dlbooster"] = train_path

    for name, res in (("inference", infer_res), ("training", train_res)):
        stats = res.extras["tracing"]["stats"]
        print(f"  traced {name}: {stats['finished']} finished traces, "
              f"{stats['aborted']} aborted, "
              f"{stats['decomposition_violations']} decomposition "
              f"violations -> {out[f'{name}_dlbooster']}")
    return out
