"""The paper's reported numbers, as a machine-readable ledger.

Used by EXPERIMENTS.md generation and by meta-tests that keep the
reproduction honest: each entry records where in the paper the number
comes from, what we measure for it, and the tolerance class (ratios and
orderings are expected to hold; absolute simulated values are
informative only).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

__all__ = ["PaperClaim", "PAPER_CLAIMS", "claims_for"]


@dataclass(frozen=True)
class PaperClaim:
    experiment_id: str     # fig2, fig5, ...
    source: str            # where in the paper
    quantity: str
    paper_value: str       # as printed in the paper
    kind: str              # "ratio" | "ordering" | "absolute" | "bound"
    note: str = ""


PAPER_CLAIMS: tuple[PaperClaim, ...] = (
    # -------------------------------------------------------------- fig2
    PaperClaim("fig2", "S2.2 / Fig. 2(a)",
               "CPU-based Caffe, default config, share of GPU perf",
               "~25%", "ratio"),
    PaperClaim("fig2", "Fig. 2(a)",
               "LMDB throughput loss at 2 GPUs", "~30%", "ratio"),
    PaperClaim("fig2", "Fig. 2(b) annotation",
               "ideal AlexNet throughput, 1/2 GPUs",
               "2,496 / 4,652 img/s", "absolute",
               "used as calibration anchors"),
    PaperClaim("fig2", "S2.2",
               "CPU cores to feed one GPU (AlexNet)",
               ">12 cores", "bound"),
    # -------------------------------------------------------------- fig5
    PaperClaim("fig5", "S5.2 (1)",
               "DLBooster vs GPU performance boundary",
               "approaches the boundary", "ratio"),
    PaperClaim("fig5", "S5.2 (2)",
               "LMDB loss at 2 GPUs on AlexNet", "~30%", "ratio"),
    PaperClaim("fig5", "S5.2 (1)",
               "small-piece copy penalty on LeNet-5 (CPU/LMDB)",
               "~20%", "ratio"),
    PaperClaim("fig5", "S5.2",
               "DLBooster gain over CPU-based / LMDB",
               "30% / 20%", "ratio"),
    # -------------------------------------------------------------- fig6
    PaperClaim("fig6", "S5.2",
               "DLBooster CPU cost", "~1.5 cores/GPU", "absolute"),
    PaperClaim("fig6", "S5.2",
               "LMDB CPU cost", "~2.5 cores/GPU", "absolute"),
    PaperClaim("fig6", "S5.2",
               "CPU-based cost (AlexNet / ResNet-18)",
               "~12 / ~7 cores per GPU", "absolute"),
    PaperClaim("fig6", "Fig. 6(d)",
               "DLBooster ResNet-18 breakdown",
               "0.12 update + 0.95 launch + 0.15 transform + "
               "0.3 preprocess", "absolute"),
    # -------------------------------------------------------------- fig7
    PaperClaim("fig7", "S5.3 (1)",
               "DLBooster throughput vs baselines", "1.2x~2.4x", "ratio"),
    PaperClaim("fig7", "S5.3 (2)",
               "nvJPEG degradation at large batch", "~40%", "ratio"),
    PaperClaim("fig7", "S5.3",
               "nvJPEG GPU-resource consumption", "~30%", "ratio"),
    PaperClaim("fig7", "S5.3",
               "DLBooster saturation on GoogLeNet", "batch > 16",
               "ordering", "decoder bound, ~6,000 img/s"),
    # -------------------------------------------------------------- fig8
    PaperClaim("fig8", "S5.3 (2)",
               "bs=1 latency DLBooster / nvJPEG / CPU",
               "1.2 / 1.8 / 3.4 ms", "absolute",
               "unloaded minima; we reproduce ordering + ratios"),
    PaperClaim("fig8", "S5.3 (3)",
               "nvJPEG latency growth with batch",
               "fastest of the three", "ordering"),
    # -------------------------------------------------------------- fig9
    PaperClaim("fig9", "S5.3",
               "CPU-based inference cost", "7~14 cores/GPU", "bound"),
    PaperClaim("fig9", "S5.3",
               "nvJPEG inference cost", "~1.5 cores/GPU", "absolute"),
    PaperClaim("fig9", "S5.3",
               "DLBooster inference cost", "~0.5 core/GPU", "absolute"),
    # ---------------------------------------------------------- sec5.4
    PaperClaim("sec5.4", "S5.4",
               "core price / yearly revenue", "$0.10~0.11/h, ~$900/y",
               "absolute"),
    PaperClaim("sec5.4", "S5.4",
               "cores one FPGA decoder replaces", "30", "absolute"),
    PaperClaim("sec5.4", "S5.4",
               "freed-core resale", ">$1.5/h", "bound"),
    PaperClaim("sec5.4", "S5.4",
               "power: FPGA / CPU / GPU", "25 / 130 / 250 W", "absolute"),
    PaperClaim("sec5.4", "S2.2",
               "LMDB ingest of ILSVRC12", ">2 hours", "bound"),
    # ---------------------------------------------------------- sec2.2
    PaperClaim("sec2.2", "S2.2",
               "Xeon E5 core decode rate", "300 img/s", "absolute"),
    PaperClaim("sec2.2", "S2.2",
               "V100 ResNet-50 inference", "5,000 img/s", "absolute"),
    PaperClaim("sec2.2", "S2.2",
               "DGX-2 cores available per GPU", "3", "absolute"),
    # ----------------------------------------------------------- chaos
    # The paper's prototype is fault-free; these anchor the resilience
    # experiment to the design statements it hardens.
    PaperClaim("chaos", "S3.4.1",
               "reader submits cmds aggressively, pulls status best-effort",
               "asynchronous (no per-cmd wait)", "ordering",
               note="extended here with a deadline + backoff retransmit "
                    "table so lost cmds cannot stall the loop"),
    PaperClaim("chaos", "S3.1",
               "CPU decode path remains available beside the FPGA",
               "hybrid primitive", "ordering",
               note="extended into a circuit-breaker failover: decoder "
                    "outages re-route items to CPU decode, probes "
                    "re-admit the FPGA"),
    # -------------------------------------------------------- overload
    # The paper's serving evaluation is closed-loop (5 windowed
    # clients), so offered load can never exceed capacity; these anchor
    # the supervision experiment to the statements it stress-tests.
    PaperClaim("overload", "S5.3 / Fig. 8",
               "serving latency measured NIC receive -> prediction",
               "closed-loop, bounded by the client window", "ordering",
               note="extended to open-loop arrivals at 2x capacity: "
                    "deadline shedding at the RX/reader/dispatcher "
                    "boundaries keeps p99 near the deadline where the "
                    "unsupervised pipeline's latency grows unboundedly"),
    PaperClaim("overload", "S3.4.2",
               "Free/Full batch queues bound in-pipeline buffering",
               "bounded queues (Algorithm 2)", "ordering",
               note="that buffering sets the admission margin: ingress "
                    "sheds requests whose slack no longer covers the "
                    "in-pipeline time, preventing decode-then-expire "
                    "livelock"),
    # ----------------------------------------------------------- fleet
    # The paper evaluates one server (1-2 GPUs, one FPGA); these anchor
    # the multi-host fleet study to the deployment statements it scales.
    PaperClaim("fleet", "S2.1",
               "DL services deploy on clusters of accelerated servers",
               "cloud-scale deployment", "ordering",
               note="extended to K simulated hosts behind a front-end "
                    "load balancer: per-host knees compose linearly and "
                    "the fleet degrades gracefully past K-1 knees"),
    PaperClaim("fleet", "S5.3 / Fig. 8",
               "online serving must hold tail latency under load",
               "latency bounded at the client window", "ordering",
               note="extended with health-driven routing: least-loaded "
                    "steers around a dead-FPGA host where round-robin "
                    "black-holes 1/K of the traffic, measured with "
                    "client-perceived percentiles (failures count at "
                    "the deadline)"),
    # ----------------------------------------------------- chaos_fleet
    # The paper's single fault-free server, scaled out and then broken:
    # these anchor the fleet-chaos study to the statements it hardens.
    PaperClaim("chaos_fleet", "S2.1",
               "DL services deploy on clusters of accelerated servers",
               "cloud-scale deployment", "ordering",
               note="at cluster scale hosts crash, hang and partition: "
                    "fleet fault kinds (host_crash/hang/slow, link "
                    "partition/flap, zone outage) draw from per-host "
                    "seed streams so (seed, plan, K) replays "
                    "bit-identically"),
    PaperClaim("chaos_fleet", "S5.3 / Fig. 8",
               "online serving must hold tail latency under load",
               "latency bounded at the client window", "ordering",
               note="extended with recovery: re-dispatch of requests "
                    "stranded on dead hosts, EWMA outlier ejection of "
                    "gray-failing hosts, deadline-aware hedging and a "
                    "token-bucket retry budget keep client p99 bounded "
                    "while killing 1 of K at the knee, with exact "
                    "request conservation under duplicate accounting"),
)


def claims_for(experiment_id: str) -> tuple[PaperClaim, ...]:
    """All paper claims recorded for one experiment id."""
    return tuple(c for c in PAPER_CLAIMS if c.experiment_id == experiment_id)
