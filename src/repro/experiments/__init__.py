"""One module per reproduced table/figure, each returning a
:class:`~repro.experiments.report.Report` of measured rows plus the
paper's qualitative claims as machine-checked assertions."""

from . import (chaos, chaos_fleet, econ_analysis, fig2_motivation,
               fig5_train_throughput, fig6_train_cpu, fig7_infer_throughput,
               fig8_infer_latency, fig9_infer_cpu, fleet, overload,
               scalability, traced)
from .paper_reference import PAPER_CLAIMS, PaperClaim, claims_for
from .report import Report, ShapeCheck, fmt_table

ALL_EXPERIMENTS = {
    "fig2": fig2_motivation.run,
    "fig5": fig5_train_throughput.run,
    "fig6": fig6_train_cpu.run,
    "fig7": fig7_infer_throughput.run,
    "fig8": fig8_infer_latency.run,
    "fig9": fig9_infer_cpu.run,
    "sec5.4": econ_analysis.run,
    "sec2.2": scalability.run,
    "chaos": chaos.run,
    "overload": overload.run,
    "fleet": fleet.run,
    "chaos_fleet": chaos_fleet.run,
}

__all__ = ["Report", "ShapeCheck", "fmt_table", "ALL_EXPERIMENTS",
           "PAPER_CLAIMS", "PaperClaim", "claims_for",
           "fig2_motivation", "fig5_train_throughput", "fig6_train_cpu",
           "fig7_infer_throughput", "fig8_infer_latency", "fig9_infer_cpu",
           "econ_analysis", "scalability", "chaos", "overload", "traced",
           "fleet", "chaos_fleet"]
