"""Fleet — K-host serving: graceful degradation, routing A/B, autoscaling.

The paper serves from one host; this experiment asks what its stack
does as a *fleet*.  K complete serving pipelines (NIC -> FPGA decode ->
dispatcher -> GPU, each supervised with the overload experiment's 25 ms
deadline) run inside one Environment behind a LoadBalancer, driven by
an open-loop arrival process well beyond any single host's knee.

Three claims are encoded as shape checks:

* **graceful degradation** — with one host's FPGA dead (decoder crash
  -> circuit breaker; probe cmds into the dark FPGA pin staging
  buffers, so the host black-holes most of its share) and offered load
  at 3x the single-host knee, the fleet keeps the p99 of served
  traffic bounded near the deadline and sheds the excess instead of
  collapsing;
* **routing matters** — least-loaded routing beats round-robin on
  *client-perceived* p99 (failed/shed requests counted at the
  deadline) when the client mix is skewed and one host is degraded:
  round-robin keeps feeding the sick host its full 1/K share — which
  flatters served-only percentiles precisely because that traffic
  never returns a sample — while least-loaded watches in-flight load
  and routes around it;
* **autoscaling** — a surge beyond the active fleet's capacity makes
  the autoscaler add hosts (sustained backlog/shed/p99-burn), and the
  post-surge lull drains them back, with conservation holding across
  every resize.

A same-seed rerun of the A/B phase must produce byte-identical
payloads — the fleet inherits the simulator's determinism.
"""

from __future__ import annotations

import json
import math

from ..calib import DEFAULT_TESTBED, INFER_MODELS
from ..engines import inference_batch_seconds
from ..faults import FaultPlan, RetryPolicy
from ..fleet import (Autoscaler, AutoscalerConfig, Host, HostConfig,
                     HealthView, LoadBalancer, OpenLoopSource, fleet_rollup,
                     make_policy, render_rollup)
from ..sim import Environment, SeedBank
from ..slo import (HostShape, SLOEvaluator, default_rules,
                   default_serving_slos, kpis_from_rollup)
from ..supervision import SupervisionConfig
from ..telemetry import MetricsRegistry
from .report import Report, timed

__all__ = ["run", "serve_fleet", "serve_autoscale", "single_host_knee"]

MODEL = "googlenet"
BATCH_SIZE = 4
# Per-host budget from the overload experiment: 25 ms deadline, ~15 ms
# of which is in-pipeline time at saturation (the admission margin).
DEADLINE_S = 0.025
MARGIN_S = 0.015
# Slim serving boxes: 8 cores per host, so a breaker-open host's CPU
# failover path (~300 img/s/core) cannot absorb a full round-robin
# share — degradation is real, not cosmetic.
HOST_CORES = 8


def single_host_knee() -> float:
    """Analytic single-host capacity (img/s): 1 GPU at BATCH_SIZE."""
    spec = INFER_MODELS[MODEL]
    return BATCH_SIZE / inference_batch_seconds(spec, BATCH_SIZE)


def _make_host(env: Environment, bank: SeedBank, index: int,
               degraded: bool = False) -> Host:
    """One supervised serving host; ``degraded`` kills its FPGA for the
    whole run (the breaker opens and CPU failover carries it)."""
    plan = retry = None
    if degraded:
        plan = FaultPlan.of(
            FaultPlan.decoder_crash(0.0, math.inf, site="fpga0"),
            name="dead-fpga")
        retry = RetryPolicy(max_attempts=2)
    namespace = f"host{index:02d}"
    cfg = HostConfig(
        model=MODEL, backend="dlbooster", batch_size=BATCH_SIZE,
        cpu_cores=HOST_CORES,
        supervision=SupervisionConfig(deadline_s=DEADLINE_S,
                                      admission_margin_s=MARGIN_S),
        fault_plan=plan, retry=retry)
    return Host(env, cfg, seeds=bank.spawn(namespace), namespace=namespace)


def serve_fleet(policy: str = "round-robin", k: int = 4,
                overload_x: float = 3.0, sim_s: float = 2.0,
                seed: int = 23, degraded_host: int = 2,
                skew: float = 1.2, num_clients: int = 32,
                with_registry: bool = False, slo=False) -> dict:
    """One fleet run: K hosts (one optionally degraded), open-loop
    arrivals at ``overload_x`` times the single-host knee, skewed
    client mix, one routing policy.  Returns the fleet rollup payload
    with an attached ``repro-kpi/1`` section.

    ``slo`` arms the in-sim SLO evaluator (observation-only: every
    simulated metric stays bit-identical with it on or off).  Pass
    ``True`` for the default availability + latency objectives at the
    serving deadline, or a dict of overrides — ``availability`` /
    ``latency_target`` targets and ``period_s`` tick period — which
    keeps sweep configs picklable.  The verdicts, burn-rate alerts and
    transition log land in ``payload["slo"]``.
    """
    env = Environment()
    bank = SeedBank(seed)
    registry = MetricsRegistry(name=f"fleet.{policy}") \
        if with_registry else None

    def _build():
        hosts = []
        for i in range(k):
            host = _make_host(env, bank, i, degraded=(i == degraded_host))
            host.start()
            hosts.append(host)
        balancer = LoadBalancer(
            env, hosts, make_policy(policy, rng=bank.stream("policy")))
        health = HealthView(env, balancer)
        balancer.attach_health(health)
        health.start()
        source = OpenLoopSource(
            env, balancer, rate=overload_x * single_host_knee(),
            image_hw=DEFAULT_TESTBED.client_image_hw,
            rng=bank.stream("arrivals"), num_clients=num_clients,
            skew=skew, deadline_s=DEADLINE_S)
        source.start()
        return hosts, balancer, health, source

    if registry is not None:
        with registry.installed():
            hosts, balancer, health, source = _build()
    else:
        hosts, balancer, health, source = _build()
    evaluator = None
    if slo:
        opts = dict(slo) if isinstance(slo, dict) else {}
        period_s = opts.pop("period_s", sim_s / 40.0)
        evaluator = SLOEvaluator(
            env, default_serving_slos(DEADLINE_S, **opts),
            rules=default_rules(sim_s), period_s=period_s)
        evaluator.attach_source(source)
        evaluator.start()
    env.run(until=sim_s)
    health.update()   # final classification at the horizon
    payload = fleet_rollup(hosts, balancer=balancer, source=source,
                           health=health, registry=registry,
                           deadline_s=DEADLINE_S)
    payload["kpi"] = kpis_from_rollup(
        payload, window_s=sim_s, shape=HostShape(cpu_cores=HOST_CORES))
    if evaluator is not None:
        payload["slo"] = evaluator.payload()
    return payload


def serve_autoscale(sim_s: float = 2.6, seed: int = 31,
                    base_x: float = 1.2, surge_x: float = 3.4,
                    surge_at: float = 0.5, surge_until: float = 1.5,
                    k0: int = 2, kmax: int = 6) -> dict:
    """Surge-and-recover: the fleet starts at ``k0`` hosts, the arrival
    rate steps from ``base_x`` to ``surge_x`` knees and back, and the
    autoscaler resizes on fleet telemetry."""
    env = Environment()
    bank = SeedBank(seed)
    knee = single_host_knee()
    hosts = []
    for i in range(k0):
        host = _make_host(env, bank, i)
        host.start()
        hosts.append(host)
    balancer = LoadBalancer(env, hosts,
                            make_policy("least-loaded"))
    health = HealthView(env, balancer)
    balancer.attach_health(health)
    health.start()
    scaler = Autoscaler(
        env, balancer,
        host_factory=lambda i: _make_host(env, bank, i),
        config=AutoscalerConfig(min_hosts=k0, max_hosts=kmax),
        deadline_s=DEADLINE_S)
    scaler.start()
    source = OpenLoopSource(
        env, balancer, rate=base_x * knee,
        image_hw=DEFAULT_TESTBED.client_image_hw,
        rng=bank.stream("arrivals"), num_clients=16,
        deadline_s=DEADLINE_S)
    source.start()

    def _surge():
        yield env.timeout(surge_at)
        source.set_rate(surge_x * knee)
        yield env.timeout(surge_until - surge_at)
        source.set_rate(base_x * knee)

    env.process(_surge(), name="surge-schedule")
    peak_active = k0
    horizon = 0.0
    while horizon < sim_s:
        horizon = min(horizon + 0.1, sim_s)
        env.run(until=horizon)
        peak_active = max(peak_active, len(balancer.active_hosts()))
    payload = fleet_rollup(balancer.hosts, balancer=balancer,
                           source=source, health=health,
                           deadline_s=DEADLINE_S)
    payload["autoscaler"] = {
        "events": [list(e) for e in scaler.events],
        "adds": len(scaler.additions()),
        "drains": len(scaler.drains()),
        "peak_active": peak_active,
        "final_active": len(balancer.active_hosts()),
    }
    payload["kpi"] = kpis_from_rollup(
        payload, window_s=sim_s, shape=HostShape(cpu_cores=HOST_CORES))
    return payload


def _fleet_row(report: Report, label: str, payload: dict,
               degraded: str) -> None:
    fleet = payload["fleet"]
    share = payload["balancer"]["shares"].get(degraded, 0.0)
    report.add_row(
        label, fleet["active_hosts"], int(payload["source"]["sent"]),
        fleet["completed"], fleet["client_failures"],
        fleet["p99_ms"] if fleet["p99_ms"] is not None else float("nan"),
        fleet["client_p99_ms"]
        if fleet["client_p99_ms"] is not None else float("nan"),
        f"{share:.1%}",
        "yes" if (fleet["conserved"] and payload["balancer"]["conserved"]
                  and payload["source"]["conserved"]) else "NO")


def _run_scenarios(scenarios: list[tuple[str, str, dict]],
                   parallel: int) -> list[dict]:
    """Run (runner, label, config) scenarios, optionally fanned out to
    worker processes.  Every scenario is an independent simulation with
    its own Environment and SeedBank, so serial and parallel execution
    produce identical payloads; results come back in list order."""
    if parallel > 1:
        from ..sweep import SweepPoint, run_sweep
        points = [SweepPoint(runner=runner, config=config, label=label)
                  for runner, label, config in scenarios]
        outcome = run_sweep(points, parallel=parallel)
        return [res["values"] for res in outcome.results]
    runners = {"fleet_serve": serve_fleet,
               "fleet_autoscale": serve_autoscale}
    return [runners[runner](**config) for runner, _, config in scenarios]


@timed
def run(quick: bool = False, parallel: int = 1) -> Report:
    """Fleet serving: degradation, routing A/B, autoscaler surge."""
    k = 3 if quick else 4
    sim_s = 1.0 if quick else 2.0
    # A/B point: the K-1 healthy hosts can serve the whole offered load
    # at 90% utilization *if* routing steers around the dark host —
    # least-loaded has real headroom to win, round-robin blind-feeds
    # the black hole its full 1/K share.
    ab_x = 0.9 * (k - 1)
    # Stress point for graceful degradation: 0.75 knee per host nominal
    # (3.0x the single-host knee at K=4) — beyond the K-1 healthy
    # hosts' aggregate capacity, so shedding *must* absorb the excess.
    stress_x = 0.75 * k
    degraded = f"host{min(2, k - 1):02d}"
    report = Report(
        experiment_id="fleet",
        title=f"Multi-host serving: {k} supervised DLBooster hosts "
              f"({MODEL}, bs={BATCH_SIZE}), one dead FPGA, open-loop "
              f"arrivals up to {stress_x:.2f}x the single-host knee",
        columns=["scenario", "hosts", "sent", "served", "failed",
                 "p99 ms", "client p99", "to-degraded", "conserved"])

    common = dict(k=k, sim_s=sim_s, degraded_host=min(2, k - 1))
    scale_s = 1.6 if quick else 2.6
    rr_cfg = dict(policy="round-robin", overload_x=ab_x,
                  with_registry=True, **common)
    scenarios = [
        ("fleet_serve", "rr", rr_cfg),
        ("fleet_serve", "ll", dict(policy="least-loaded",
                                   overload_x=ab_x, with_registry=True,
                                   **common)),
        ("fleet_serve", "stress", dict(policy="least-loaded",
                                       overload_x=stress_x, **common)),
        ("fleet_autoscale", "surge",
         dict(sim_s=scale_s, surge_at=0.4 if quick else 0.5,
              surge_until=0.9 if quick else 1.5)),
        # Determinism fingerprint: the A/B phase replayed end-to-end.
        ("fleet_serve", "rr2", dict(rr_cfg)),
    ]
    rr, ll, stress, surge, rr2 = _run_scenarios(scenarios, parallel)
    report.kpis = {"round-robin": rr["kpi"], "least-loaded": ll["kpi"],
                   "stress": stress["kpi"],
                   "autoscale-surge": surge["kpi"]}
    _fleet_row(report, f"round-robin @{ab_x:.1f}x", rr, degraded)
    _fleet_row(report, f"least-loaded @{ab_x:.1f}x", ll, degraded)
    _fleet_row(report, f"degraded @{stress_x:.2f}x", stress, degraded)
    auto = surge["autoscaler"]
    _fleet_row(report, "autoscale surge",
               surge, "host99")   # no degraded host in this phase

    report.notes.append(
        f"single-host knee {single_host_knee():,.0f} img/s; deadline "
        f"{DEADLINE_S * 1e3:.0f} ms with {MARGIN_S * 1e3:.0f} ms "
        f"admission margin; degraded host = {degraded} (FPGA dark all "
        f"run, circuit breaker -> CPU failover on "
        f"{HOST_CORES} cores)")
    report.notes.append("per-host / fleet latency rollup (least-loaded):")
    for line in render_rollup(ll).splitlines():
        report.notes.append(line)
    report.notes.append(
        f"autoscaler: peak {auto['peak_active']} active, final "
        f"{auto['final_active']}; events: "
        + "; ".join(f"t={t:.2f}s {what} {host}"
                    for t, what, host, _ in auto["events"]))

    offered = rr["source"]["sent"]
    report.check(
        "degraded fleet stays conserved under every scenario",
        all(p["fleet"]["conserved"] and p["balancer"]["conserved"]
            and p["source"]["conserved"] for p in (rr, ll, stress)))
    report.check(
        f"graceful degradation at {stress_x:.2f}x knee: served p99 "
        "stays bounded near the deadline while the excess is shed",
        stress["fleet"]["p99_ms"] <= 2.0 * DEADLINE_S * 1e3
        and stress["fleet"]["client_failures"] > 0
        and stress["fleet"]["completed"] > 0,
        f"p99 {stress['fleet']['p99_ms']:.1f} ms vs deadline "
        f"{DEADLINE_S * 1e3:.0f} ms; served "
        f"{stress['fleet']['completed']}, turned away "
        f"{stress['fleet']['client_failures']}")
    report.check(
        "health view marks the dead-FPGA host degraded (breaker open)",
        rr["health"].get(degraded) == "degraded"
        and ll["health"].get(degraded) == "degraded",
        f"rr={rr['health'].get(degraded)}, ll={ll['health'].get(degraded)}")
    report.check(
        "least-loaded routes around the degraded host "
        "(smaller traffic share than round-robin's blind 1/K)",
        ll["balancer"]["shares"][degraded]
        < 0.8 * rr["balancer"]["shares"][degraded],
        f"share to {degraded}: ll "
        f"{ll['balancer']['shares'][degraded]:.1%} vs rr "
        f"{rr['balancer']['shares'][degraded]:.1%}")
    report.check(
        "least-loaded beats round-robin on client-perceived fleet p99 "
        "(failed/shed requests counted at the deadline)",
        ll["fleet"]["client_p99_ms"] < rr["fleet"]["client_p99_ms"],
        f"client p99 ll={ll['fleet']['client_p99_ms']:.1f} vs "
        f"rr={rr['fleet']['client_p99_ms']:.1f} ms")
    report.check(
        "least-loaded turns away far fewer requests than round-robin",
        ll["fleet"]["client_failures"]
        < 0.2 * rr["fleet"]["client_failures"],
        f"failures ll={ll['fleet']['client_failures']} vs "
        f"rr={rr['fleet']['client_failures']} of {offered} offered")
    report.check(
        "autoscaler adds capacity during the surge and drains it after",
        auto["adds"] >= 1 and auto["drains"] >= 1
        and auto["peak_active"] > 2 and auto["final_active"]
        < auto["peak_active"],
        f"adds={auto['adds']} drains={auto['drains']} "
        f"peak={auto['peak_active']} final={auto['final_active']}")
    report.check(
        "fleet under autoscaling stays conserved with bounded p99",
        surge["fleet"]["conserved"] and surge["source"]["conserved"]
        and surge["fleet"]["p99_ms"] <= 2.0 * DEADLINE_S * 1e3,
        f"p99 {surge['fleet']['p99_ms']:.1f} ms")
    report.check(
        "same-seed rerun is byte-identical (deterministic fleet)",
        json.dumps(rr, sort_keys=True, default=str)
        == json.dumps(rr2, sort_keys=True, default=str))
    return report
