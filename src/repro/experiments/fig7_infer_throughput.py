"""Figure 7 — inference throughput for GoogLeNet / VGG-16 / ResNet-50 on
TensorRT (fp16) with DLBooster, nvJPEG and CPU-based backends, over a
batch-size sweep.

Shape checks encode S5.3's findings: DLBooster delivers 1.2x-2.4x the
baselines; nvJPEG degrades as batch grows (GPU-core competition);
throughput grows with batch size for all backends; DLBooster hits its
decoder bound past batch 16 on GoogLeNet.
"""

from __future__ import annotations

from ..calib import INFER_MODELS
from ..workflows import InferenceConfig, run_inference
from .report import Report, timed

__all__ = ["run", "batch_sweep"]

BACKENDS = ("cpu-online", "nvjpeg", "dlbooster")


def batch_sweep(model: str, quick: bool) -> tuple[int, ...]:
    """Batch sizes swept for one model (truncated in the quick profile)."""
    max_bs = INFER_MODELS[model].batch_size      # 32 or 64 per the figures
    if quick:
        return tuple(b for b in (1, 8, max_bs))
    sweep = [1, 2, 4, 8, 16, 32, 64]
    return tuple(b for b in sweep if b <= max_bs)


@timed
def run(quick: bool = False, models=("googlenet", "vgg16", "resnet50"),
        parallel: int = 1) -> Report:
    """Reproduce Fig. 7: inference throughput over the batch sweep.

    ``parallel > 1`` fans the (model, backend, batch) grid out to that
    many worker processes via :mod:`repro.sweep`; each point is an
    independent simulation, and results are reassembled in the serial
    loop order, so the report is identical to a serial run.
    """
    warmup, measure = (0.8, 2.5) if quick else (1.0, 5.0)
    report = Report(
        experiment_id="fig7",
        title="Inference throughput on TensorRT (fp16), 5 clients over "
              "40 Gbps",
        columns=["model", "backend", "batch", "img/s"])

    grid = [(model, backend, bs)
            for model in models
            for backend in BACKENDS
            for bs in batch_sweep(model, quick)]
    if parallel > 1:
        from ..sweep import SweepPoint, run_sweep
        points = [SweepPoint(
            runner="fig7_infer",
            config={"model": m, "backend": b, "batch_size": bs,
                    "warmup_s": warmup, "measure_s": measure,
                    "telemetry": False},
            label=f"{m}/{b}/bs{bs}") for m, b, bs in grid]
        outcome = run_sweep(points, parallel=parallel)
        throughputs = [res["values"]["throughput"]
                       for res in outcome.results]
    else:
        throughputs = [
            run_inference(InferenceConfig(
                model=m, backend=b, batch_size=bs,
                warmup_s=warmup, measure_s=measure)).throughput
            for m, b, bs in grid]

    perf: dict[tuple, float] = {}
    for (model, backend, bs), throughput in zip(grid, throughputs):
        perf[(model, backend, bs)] = throughput
        report.add_row(model, backend, bs, throughput)

    for model in models:
        top = max(batch_sweep(model, quick))
        dlb = perf[(model, "dlbooster", top)]
        cpu = perf[(model, "cpu-online", top)]
        nvj = perf[(model, "nvjpeg", top)]
        report.check(
            f"DLBooster-enabled TensorRT achieves >=1.2x nvJPEG on "
            f"{model} at batch {top} (S5.3 (1))",
            dlb >= 1.2 * nvj, f"{dlb / nvj:.2f}x")
        if model == "vgg16":
            # VGG's engine bound (~2,100 img/s) sits below every
            # backend's preprocessing capacity except nvJPEG's, so
            # DLBooster and CPU-based tie at the bound (Fig. 7b shows
            # them close) — but CPU-based pays ~7 cores for parity.
            report.check(
                "DLBooster matches the CPU-based backend at VGG-16's "
                "engine bound (Fig. 7b)",
                dlb >= 0.97 * cpu, f"{dlb / cpu:.2f}x")
        else:
            report.check(
                f"DLBooster achieves >=1.2x the CPU-based backend on "
                f"{model} at batch {top} (S5.3 (1))",
                dlb >= 1.2 * cpu, f"{dlb / cpu:.2f}x")
        report.check(
            f"nvJPEG-enabled TensorRT achieves the lowest throughput on "
            f"{model} at large batch (S5.3 (2))",
            nvj <= cpu and nvj <= dlb,
            f"nvJPEG {nvj:.0f} vs cpu {cpu:.0f}")
        for backend in BACKENDS:
            sweep = batch_sweep(model, quick)
            report.check(
                f"{backend} throughput grows with batch size on {model} "
                f"(S5.3 (4))",
                perf[(model, backend, sweep[-1])]
                >= perf[(model, backend, sweep[0])],
                "")

    if "googlenet" in models and not quick:
        knee = (perf[("googlenet", "dlbooster", 32)]
                / perf[("googlenet", "dlbooster", 16)])
        report.check(
            "DLBooster approaches its decoder bound past batch 16 on "
            "GoogLeNet (S5.3: saturation knee)",
            knee <= 1.15, f"bs32/bs16 = {knee:.2f}")
    # The blanket claim: somewhere in the sweep DLBooster reaches ~2.4x.
    # Only meaningful when a decode-bound model is part of the run —
    # VGG-16 alone is engine-bound everywhere (Fig. 7b).
    if any(m in models for m in ("googlenet", "resnet50")):
        best = max(
            perf[(m, "dlbooster", b)] / perf[(m, other, b)]
            for m in models for b in batch_sweep(m, quick)
            for other in ("cpu-online", "nvjpeg"))
        report.check(
            "DLBooster's advantage peaks around 2.4x (abstract: "
            "1.35x~2.4x)",
            2.0 <= best <= 3.0, f"max ratio {best:.2f}x")
    return report
