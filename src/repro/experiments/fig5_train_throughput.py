"""Figure 5 — training throughput for LeNet-5 / AlexNet / ResNet-18 on
NVCaffe with CPU-based, LMDB and DLBooster backends (1 and 2 GPUs),
against the GPU performance upper boundary.

Paper claims reproduced as shape checks:
* DLBooster approaches the GPU performance boundary on all models;
* LMDB loses ~30% at 2 GPUs on AlexNet (shared-DB competition);
* per-datum small-piece copies cost CPU/LMDB ~20% on LeNet-5;
* DLBooster outperforms CPU-based/LMDB by roughly 30%/20% overall.
"""

from __future__ import annotations

from ..workflows import TrainingConfig, run_training
from .report import Report, timed

__all__ = ["run", "MODELS"]

MODELS = ("lenet5", "alexnet", "resnet18")
BACKENDS = ("cpu-online", "lmdb", "dlbooster")


@timed
def run(quick: bool = False, models=MODELS) -> Report:
    """Reproduce Fig. 5: training throughput per backend vs the bound."""
    warmup, measure = (1.0, 3.0) if quick else (2.0, 8.0)
    report = Report(
        experiment_id="fig5",
        title="Training throughput by backend (batch sizes: LeNet 512, "
              "AlexNet 256, ResNet-18 128 per GPU)",
        columns=["model", "backend", "gpus", "img/s", "% of bound"])

    perf: dict[tuple, float] = {}
    bounds: dict[tuple, float] = {}
    for model in models:
        for gpus in (1, 2):
            bound = run_training(TrainingConfig(
                model=model, backend="synthetic", num_gpus=gpus,
                warmup_s=warmup, measure_s=measure)).throughput
            bounds[(model, gpus)] = bound
            report.add_row(model, "upper-bound", gpus, bound, 100.0)
            for backend in BACKENDS:
                res = run_training(TrainingConfig(
                    model=model, backend=backend, num_gpus=gpus,
                    warmup_s=warmup, measure_s=measure))
                perf[(model, backend, gpus)] = res.throughput
                report.add_row(model, backend, gpus, res.throughput,
                               100.0 * res.throughput / bound)

    def frac(model, backend, gpus):
        return perf[(model, backend, gpus)] / bounds[(model, gpus)]

    for model in models:
        report.check(
            f"DLBooster approaches the GPU bound on {model} (S5.2 (1))",
            frac(model, "dlbooster", 2) >= 0.93,
            f"measured {frac(model, 'dlbooster', 2):.0%}")

    if "alexnet" in models:
        loss = 1 - frac("alexnet", "lmdb", 2)
        report.check(
            "LMDB loses ~30% at 2 GPUs on AlexNet (S5.2 (2))",
            0.20 <= loss <= 0.40, f"measured {loss:.0%}")
        report.check(
            "DLBooster beats LMDB by >=20% on AlexNet at 2 GPUs (S5.2)",
            perf[("alexnet", "dlbooster", 2)]
            >= 1.20 * perf[("alexnet", "lmdb", 2)],
            f"ratio {perf[('alexnet', 'dlbooster', 2)] / perf[('alexnet', 'lmdb', 2)]:.2f}x")

    if "lenet5" in models:
        for backend in ("cpu-online", "lmdb"):
            loss = 1 - frac("lenet5", backend, 1)
            report.check(
                f"per-datum small copies cost {backend} ~20% on LeNet-5 "
                f"(S5.2 (1))",
                0.10 <= loss <= 0.30, f"measured {loss:.0%}")

    if "resnet18" in models:
        report.check(
            "CPU-based NVCaffe achieves attractive throughput on "
            "ResNet-18 (S5.2 (3))",
            frac("resnet18", "cpu-online", 2) >= 0.85,
            f"measured {frac('resnet18', 'cpu-online', 2):.0%}")
    return report
