"""Section 5.4 — economic analysis of offloading preprocessing to FPGAs.

The paper's arithmetic, reproduced from the calibrated cost parameters:

* a physical core sells for $0.10-0.11/hour -> ~$900/year;
* one well-optimized FPGA decoder replaces ~30 cores of decode, so the
  freed cores resell for >$1.5/hour;
* power: FPGA ~25 W vs CPU ~130 W vs GPU ~250 W;
* offline backends also cost *time*: >2 h to convert ILSVRC12 to LMDB.
"""

from __future__ import annotations

from ..backends import ingest_manifest
from ..calib import DEFAULT_TESTBED, TRAIN_MODELS, Testbed
from ..data import imagenet_like_manifest
from ..host import BatchSpec
from ..sim import SeedBank
from .report import Report, timed

__all__ = ["run", "core_revenue_per_year", "freed_core_value_per_hour",
           "fpga_breakeven_hours", "power_cost_per_year"]

ILSVRC12_IMAGES = 12_800_000  # "more than 12.8 million color images" (S5.1)


def core_revenue_per_year(testbed: Testbed = DEFAULT_TESTBED) -> float:
    """Cloud revenue of one physical core (S5.4: ~$900/year)."""
    return testbed.core_price_per_hour * testbed.hours_per_year


def freed_core_value_per_hour(testbed: Testbed = DEFAULT_TESTBED) -> float:
    """Hourly resale of the cores one FPGA decoder frees (S5.4: >$1.5/h)."""
    return testbed.fpga_equivalent_cores * testbed.core_price_per_hour


def fpga_breakeven_hours(testbed: Testbed = DEFAULT_TESTBED) -> float:
    """Hours of freed-core resale that pay for the FPGA card."""
    return testbed.fpga_card_price / freed_core_value_per_hour(testbed)


def power_cost_per_year(watts: float,
                        testbed: Testbed = DEFAULT_TESTBED) -> float:
    """Yearly electricity cost of a device drawing ``watts``."""
    return watts / 1000.0 * testbed.hours_per_year \
        * testbed.electricity_per_kwh


@timed
def run(quick: bool = False) -> Report:
    """Reproduce S5.4: the cost/power arithmetic as a report."""
    tb = DEFAULT_TESTBED
    report = Report(
        experiment_id="sec5.4",
        title="Economic analysis of FPGA-offloaded preprocessing",
        columns=["quantity", "value", "unit"])

    rev = core_revenue_per_year(tb)
    freed = freed_core_value_per_hour(tb)
    breakeven = fpga_breakeven_hours(tb)
    report.add_row("core resale", tb.core_price_per_hour, "$/h")
    report.add_row("core revenue", rev, "$/year")
    report.add_row("cores one FPGA replaces", tb.fpga_equivalent_cores,
                   "cores")
    report.add_row("freed-core resale", freed, "$/h")
    report.add_row("FPGA card break-even", breakeven / 24.0, "days")
    report.add_row("FPGA power cost", power_cost_per_year(tb.fpga_power_w),
                   "$/year")
    report.add_row("CPU power cost", power_cost_per_year(tb.cpu_power_w),
                   "$/year")
    report.add_row("GPU power cost", power_cost_per_year(tb.gpu_power_w),
                   "$/year")

    # Offline time cost (S2.2): LMDB conversion of ILSVRC12.
    n = 50_000 if quick else ILSVRC12_IMAGES
    manifest = imagenet_like_manifest(min(n, 50_000), SeedBank(0))
    spec = TRAIN_MODELS["alexnet"]
    bspec = BatchSpec(batch_size=spec.batch_size, out_h=spec.input_hw[0],
                      out_w=spec.input_hw[1], channels=spec.channels)
    per_image = ingest_manifest(manifest, bspec, tb) / len(manifest)
    ingest_hours = per_image * ILSVRC12_IMAGES / 3600.0
    report.add_row("LMDB ingest of ILSVRC12", ingest_hours, "hours")

    report.check("a physical core yields ~$900/year (S5.4)",
                 800 <= rev <= 1000, f"${rev:.0f}")
    report.check("freed cores resell for more than $1.5/h (S5.4)",
                 freed > 1.5, f"${freed:.2f}/h")
    report.check("FPGA has the lowest power draw (S5.4: 25 vs 130 vs 250 W)",
                 tb.fpga_power_w < tb.cpu_power_w < tb.gpu_power_w, "")
    report.check("preparing LMDB for ILSVRC12 takes more than 2 hours "
                 "(S2.2)", ingest_hours > 2.0, f"{ingest_hours:.1f} h")
    report.check("the FPGA card pays for itself within a year of resale",
                 breakeven < tb.hours_per_year, f"{breakeven / 24:.0f} days")
    return report
