"""Chaos engineering — resilience of the offload pipeline under faults.

The paper's prototype (and its evaluation) assumes a fault-free testbed.
This experiment goes beyond the paper: it arms the
:mod:`repro.faults` injection layer against the DLBooster training
backend and the serving fabric, and checks that the resilience
machinery (deadline + backoff resubmission, poison quarantine, CPU
circuit-breaker failover) degrades throughput gracefully while
preserving the item-conservation invariant
``accepted == fpga_decoded + cpu_failover + quarantined``.

Scenarios
---------
* **cmd-drop 1% / 5%** — commands silently lost on the PCIe path; the
  retransmit table must recover every one, and at 1% the throughput
  cost must be within 10% of fault-free.
* **payload-corrupt 2%** — poison JPEGs; retries cannot cure data, so
  the items must land in the quarantine log, never in a batch.
* **NVMe error + latency** — device read failures surface as error
  FINISH records and are retried/quarantined.
* **decoder crash window** — the mirror drops *everything* for 200 ms;
  the circuit breaker must open, fail items over to CPU decode, then
  re-admit the FPGA via probes once the window passes (visible in the
  Chrome trace as ``breaker:open``/``breaker:closed`` instants).
* **NIC loss** — lost packet bursts on the client fabric cost wire
  time; goodput degrades monotonically and boundedly with loss rate.
"""

from __future__ import annotations

import json
from typing import Optional

from ..calib import DEFAULT_TESTBED
from ..faults import FaultInjector, FaultPlan, RetryPolicy
from ..net import Link
from ..sim import Environment, SeedBank, Tracer
from ..workflows import TrainingConfig, run_training
from .report import Report, timed

__all__ = ["run", "nic_loss_goodput", "train_under_faults"]


def train_under_faults(plan: Optional[FaultPlan] = None,
                       retry: Optional[RetryPolicy] = None,
                       quick: bool = False,
                       tracer_factory=None,
                       **overrides):
    """One AlexNet/DLBooster training run under the given fault plan.

    The default corpus (400k images) exceeds the decoded-dataset cache,
    so the FPGA path stays hot for the whole measurement window and the
    fault plan bites steady-state traffic.
    """
    warmup, measure = (1.0, 2.0) if quick else (2.0, 6.0)
    cfg = TrainingConfig(model="alexnet", backend="dlbooster",
                         warmup_s=warmup, measure_s=measure,
                         fault_plan=plan, retry=retry, **overrides)
    return run_training(cfg, tracer_factory=tracer_factory)


def nic_loss_goodput(loss_rate: float, messages: int = 400,
                     msg_bytes: int = 64_000) -> tuple[float, int]:
    """Micro-sim: stream ``messages`` JPEG-sized sends over the 40 Gbps
    link under ``nic_loss`` faults; returns (goodput B/s, retransmits)."""
    env = Environment()
    injector = None
    if loss_rate > 0:
        plan = FaultPlan.of(FaultPlan.nic_loss(loss_rate, burst_packets=4),
                            name=f"nic-loss-{loss_rate}")
        injector = FaultInjector(env, plan, seeds=SeedBank(7))
    link = Link(env, DEFAULT_TESTBED.nic_rate, mtu=DEFAULT_TESTBED.nic_mtu,
                injector=injector)

    def _sender():
        for _ in range(messages):
            yield from link.transmit(msg_bytes)

    env.run(until=env.process(_sender(), name="chaos-sender"))
    goodput = messages * msg_bytes / env.now
    return goodput, int(link.retransmitted_packets.total)


def _trace_names(tracer: Tracer) -> set[str]:
    events = json.loads(tracer.to_chrome_trace())
    if isinstance(events, dict):
        events = events["traceEvents"]
    return {e.get("name", "") for e in events if isinstance(e, dict)}


@timed
def run(quick: bool = False) -> Report:
    """Degradation curves + recovery proof for the resilience layer."""
    report = Report(
        experiment_id="chaos",
        title="Resilience under injected faults (AlexNet / DLBooster, "
              "1 GPU, 1 FPGA)",
        columns=["scenario", "img/s", "% of fault-free", "retries",
                 "quarantined", "failover", "conserved"])

    def add(label, res, baseline_tput=None):
        totals = res.extras["fault_totals"]
        pct = (100.0 * res.throughput / baseline_tput
               if baseline_tput else 100.0)
        report.add_row(label, res.throughput, pct, totals["retries"],
                       totals["quarantined"], totals["failover_items"],
                       "yes" if res.extras["item_conservation"] else "NO")
        return totals

    # -- fault-free reference ------------------------------------------------
    base = train_under_faults(quick=quick)
    base_totals = add("fault-free", base)
    report.check(
        "fault-free run never touches the resilience machinery",
        all(v == 0 for v in base_totals.values()),
        f"totals {base_totals}")

    # -- cmd drop: the retransmit table recovers lost cmds -------------------
    drop1 = train_under_faults(
        FaultPlan.of(FaultPlan.cmd_drop(0.01), name="drop-1pct"),
        retry=RetryPolicy(max_attempts=4), quick=quick)
    t1 = add("cmd-drop 1%", drop1, base.throughput)
    report.check(
        "1% cmd drop stays within 10% of fault-free throughput",
        drop1.throughput >= 0.90 * base.throughput,
        f"{drop1.throughput:.0f} vs {base.throughput:.0f} img/s")
    report.check(
        "dropped cmds are resubmitted (retries > 0) and conserved",
        t1["retries"] > 0 and drop1.extras["item_conservation"],
        f"{t1['retries']} retries")

    drop5 = train_under_faults(
        FaultPlan.of(FaultPlan.cmd_drop(0.05), name="drop-5pct"),
        retry=RetryPolicy(max_attempts=4), quick=quick)
    add("cmd-drop 5%", drop5, base.throughput)
    report.check(
        "5% cmd drop still conserves every accepted item",
        drop5.extras["item_conservation"])

    # -- poison payloads: retries can't cure data, quarantine must -----------
    corrupt = train_under_faults(
        FaultPlan.of(FaultPlan.payload_corrupt(0.02), name="corrupt-2pct"),
        retry=RetryPolicy(max_attempts=2), quick=quick)
    tc = add("payload-corrupt 2%", corrupt, base.throughput)
    report.check(
        "poison JPEGs end in the quarantine log, not in batches",
        tc["quarantined"] > 0 and corrupt.extras["item_conservation"],
        f"{tc['quarantined']} quarantined: "
        f"{corrupt.extras['quarantine_reasons']}")

    # -- NVMe read faults: error FINISH records are retried ------------------
    nvme = train_under_faults(
        FaultPlan.of(FaultPlan.nvme_error(0.01),
                     FaultPlan.nvme_latency(0.05, extra_s=2e-3),
                     name="nvme-chaos"),
        retry=RetryPolicy(max_attempts=3), quick=quick)
    tn = add("nvme err 1% + lat 5%", nvme, base.throughput)
    report.check(
        "NVMe read errors are retried and the run stays conserved",
        tn["retries"] > 0 and nvme.extras["item_conservation"],
        f"{tn['retries']} retries, {tn['quarantined']} quarantined")

    # -- decoder crash: breaker -> CPU failover -> probe re-admission --------
    # Short corpus: the 200 ms outage sits inside first-epoch FPGA
    # traffic and ends before the epoch does, so probe re-admission is
    # observable.  Tight deadlines force failover rather than waiting
    # out the outage.
    crash = train_under_faults(
        FaultPlan.of(FaultPlan.decoder_crash(0.05, 0.25), name="crash"),
        retry=RetryPolicy(deadline_s=0.08, max_attempts=2),
        quick=quick, dataset_size=3000, tracer_factory=Tracer)
    tk = add("decoder crash 200ms", crash)
    report.check(
        "crash opens the breaker and items fail over to CPU decode",
        tk["failovers"] >= 1 and tk["failover_items"] > 0,
        f"{tk['failovers']} failovers, {tk['failover_items']} items via CPU")
    report.check(
        "probes re-admit the FPGA after the outage (breaker closed)",
        tk["recoveries"] >= 1
        and crash.extras.get("breaker_state") == "closed",
        f"{tk['recoveries']} recoveries, "
        f"state {crash.extras.get('breaker_state')}")
    report.check(
        "crash run conserves every accepted item",
        crash.extras["item_conservation"])
    names = _trace_names(crash.extras["tracer"])
    report.check(
        "Chrome trace shows the fault and both breaker transitions",
        any(n.startswith("fault:decoder_crash") for n in names)
        and "breaker:open" in names and "breaker:closed" in names,
        f"{len(names)} distinct event names")

    # -- NIC loss: wire-time degradation curve -------------------------------
    goodputs = {}
    for rate in (0.0, 0.1, 0.4):
        goodput, rexmit = nic_loss_goodput(rate)
        goodputs[rate] = goodput
        report.add_row(f"nic-loss {rate:.0%}", goodput / 1e9 * 8,
                       100.0 * goodput / goodputs[0.0], rexmit, 0, 0, "yes")
    report.notes.append(
        "nic-loss rows report link goodput in Gbit/s (micro-sim), "
        "not training img/s")
    report.check(
        "NIC loss degrades goodput monotonically",
        goodputs[0.0] > goodputs[0.1] > goodputs[0.4],
        f"{[f'{g/1e9*8:.1f}Gb' for g in goodputs.values()]}")
    report.check(
        "retransmission bounds the damage (40% loss keeps >=60% goodput)",
        goodputs[0.4] >= 0.60 * goodputs[0.0])
    return report
