"""Figure 6 — CPU cost in the training experiments.

(a)-(c): cores burned per backend for LeNet-5 / AlexNet / ResNet-18 at
1 and 2 GPUs; (d): the detailed breakdown for ResNet-18 with DLBooster
(paper: 0.12 updating + 0.95 launching + 0.15 transforming + 0.3
preprocessing ~= 1.5 cores in all).
"""

from __future__ import annotations

from ..workflows import TrainingConfig, run_training
from .report import Report, timed

__all__ = ["run"]

MODELS = ("lenet5", "alexnet", "resnet18")
BACKENDS = ("cpu-online", "lmdb", "dlbooster")

# Map our CPU accounting categories to Fig. 6(d)'s labels.
BREAKDOWN_LABELS = {
    "update": "updating model",
    "kernels": "launching kernels",
    "transform": "transforming",
    "preprocess": "preprocessing",
}


@timed
def run(quick: bool = False, models=MODELS) -> Report:
    """Reproduce Fig. 6: training CPU cores (+ the 6(d) breakdown)."""
    warmup, measure = (1.0, 3.0) if quick else (2.0, 8.0)
    report = Report(
        experiment_id="fig6",
        title="CPU cost in training (cores, time-integrated)",
        columns=["model", "backend", "gpus", "cores total", "cores/GPU"])

    cores: dict[tuple, float] = {}
    breakdown_d: dict[str, float] = {}
    for model in models:
        for backend in BACKENDS:
            for gpus in (1, 2):
                res = run_training(TrainingConfig(
                    model=model, backend=backend, num_gpus=gpus,
                    warmup_s=warmup, measure_s=measure))
                cores[(model, backend, gpus)] = res.cpu_cores_per_gpu
                report.add_row(model, backend, gpus, res.cpu_cores,
                               res.cpu_cores_per_gpu)
                if model == "resnet18" and backend == "dlbooster" \
                        and gpus == 1:
                    breakdown_d = dict(res.cpu_breakdown)

    # -- Fig. 6(d): the DLBooster/ResNet-18 breakdown ----------------------
    if breakdown_d:
        report.notes.append(
            "Fig. 6(d) breakdown (ResNet-18 + DLBooster, 1 GPU): " +
            ", ".join(f"{BREAKDOWN_LABELS.get(k, k)}={v:.2f}"
                      for k, v in sorted(breakdown_d.items())))
        report.check(
            "training ResNet-18 with DLBooster costs <=2 cores in all "
            "(Fig. 6d: ~1.5)",
            sum(breakdown_d.values()) <= 2.0,
            f"measured {sum(breakdown_d.values()):.2f}")
        report.check(
            "preprocessing occupies only ~0.3 core (Fig. 6d)",
            0.1 <= breakdown_d.get("preprocess", 0.0) <= 0.6,
            f"measured {breakdown_d.get('preprocess', 0.0):.2f}")
        report.check(
            "kernel launching dominates DLBooster's residual CPU "
            "(Fig. 6d: 0.95 core)",
            breakdown_d.get("kernels", 0.0) >= 0.5,
            f"measured {breakdown_d.get('kernels', 0.0):.2f}")

    # -- per-backend claims ------------------------------------------------
    if "alexnet" in models:
        report.check(
            "DLBooster consumes ~1.5 cores/GPU training AlexNet (S5.2)",
            cores[("alexnet", "dlbooster", 1)] <= 2.0,
            f"measured {cores[('alexnet', 'dlbooster', 1)]:.2f}")
        report.check(
            "CPU-based NVCaffe burns ~12 cores/GPU on AlexNet (S5.2)",
            cores[("alexnet", "cpu-online", 1)] >= 7.0,
            f"measured {cores[('alexnet', 'cpu-online', 1)]:.2f}")
        report.check(
            "DLBooster consumes ~1/10 the CPU of the CPU-based backend "
            "(abstract)",
            cores[("alexnet", "cpu-online", 1)]
            >= 5.0 * cores[("alexnet", "dlbooster", 1)],
            f"ratio {cores[('alexnet', 'cpu-online', 1)] / cores[('alexnet', 'dlbooster', 1)]:.1f}x")
    if "resnet18" in models:
        report.check(
            "CPU-based NVCaffe burns ~7 cores/GPU on ResNet-18 (S5.2)",
            cores[("resnet18", "cpu-online", 1)] >= 4.0,
            f"measured {cores[('resnet18', 'cpu-online', 1)]:.2f}")
    if "lenet5" in models:
        report.check(
            "all three backends cause little CPU overhead on LeNet-5 "
            "(MNIST cached after the first epoch, S5.2)",
            max(cores[("lenet5", b, 1)] for b in BACKENDS) <= 4.0,
            f"max {max(cores[('lenet5', b, 1)] for b in BACKENDS):.2f}")
    return report
