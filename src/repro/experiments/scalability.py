"""Section 2.2 — the scalability argument, quantified, then measured.

"The NVIDIA Tesla V100 can process 5,000 images per second when
inferring the ResNet-50 model whereas each Xeon E5 CPU core can decode
only 300 images per second, and the demands on CPU cores to fully boost
GPUs' performance have already exceeded what such servers can offer
[...] in NVIDIA DGX-2, each GPU can use at most 3 cores on average."

Two halves:

* the paper's **analytic** core-demand table (decode cores needed per
  GPU vs cores available on real servers), unchanged;
* a **measured** fleet-size sweep on :class:`repro.fleet.Host` — K
  complete DLBooster hosts behind a round-robin LoadBalancer, open-loop
  arrivals at 90% of the aggregate knee.  Hosts share nothing, so
  aggregate throughput must scale linearly in K and the K=1 point must
  match the single-host analytic knee; both are shape-checked.
"""

from __future__ import annotations

from ..calib import DEFAULT_TESTBED, INFER_MODELS, Testbed
from ..engines import inference_batch_seconds
from ..fleet import Host, HostConfig, LoadBalancer, OpenLoopSource, \
    make_policy
from ..sim import Environment, SeedBank
from .report import Report, timed

__all__ = ["run", "cores_needed_per_gpu", "fleet_throughput"]

V100_RESNET50_RATE = 5_000.0   # img/s (S2.2)
DGX2_GPUS = 16
DGX2_CORES = 48


def cores_needed_per_gpu(gpu_rate: float,
                         testbed: Testbed = DEFAULT_TESTBED) -> float:
    """Decode cores required to keep one GPU of ``gpu_rate`` img/s fed."""
    per_core = 1.0 / testbed.cpu_decode_seconds(
        110_000, int(375 * 500 * 1.5))  # the 500x375 corpus image
    return gpu_rate / per_core


FLEET_MODEL = "googlenet"
FLEET_BATCH = 4


def fleet_throughput(k: int, sim_s: float = 1.0, seed: int = 11,
                     util: float = 0.9) -> dict:
    """Measured aggregate throughput of a K-host DLBooster fleet.

    Open-loop arrivals at ``util`` x the aggregate knee, round-robin
    over K identical hosts; returns offered/served rates and the
    per-host breakdown.
    """
    spec = INFER_MODELS[FLEET_MODEL]
    knee = FLEET_BATCH / inference_batch_seconds(spec, FLEET_BATCH)
    env = Environment()
    bank = SeedBank(seed)
    hosts = []
    for i in range(k):
        namespace = f"host{i:02d}"
        host = Host(env, HostConfig(model=FLEET_MODEL, backend="dlbooster",
                                    batch_size=FLEET_BATCH, cpu_cores=8),
                    seeds=bank.spawn(namespace), namespace=namespace)
        host.start()
        hosts.append(host)
    balancer = LoadBalancer(env, hosts, make_policy("round-robin"))
    source = OpenLoopSource(
        env, balancer, rate=util * k * knee,
        image_hw=DEFAULT_TESTBED.client_image_hw,
        rng=bank.stream("arrivals"), num_clients=8)
    source.start()
    env.run(until=sim_s)
    served = sum(int(h.completed.total) for h in hosts)
    return {
        "k": k,
        "offered_rate": util * k * knee,
        "served_rate": served / sim_s,
        "per_host": [int(h.completed.total) / sim_s for h in hosts],
        "conserved": (source.conservation_ok()
                      and balancer.conservation_ok()
                      and all(h.conservation_ok() for h in hosts)),
    }


@timed
def run(quick: bool = False) -> Report:
    """Reproduce S2.2: decode-core demand vs availability."""
    tb = DEFAULT_TESTBED
    report = Report(
        experiment_id="sec2.2",
        title="Scalability: decode cores demanded per GPU vs cores "
              "available; measured K-host fleet scaling",
        columns=["platform", "gpu img/s", "cores needed/GPU",
                 "cores avail/GPU"])

    per_core = 1.0 / tb.cpu_decode_seconds(110_000, int(375 * 500 * 1.5))
    needed_v100 = cores_needed_per_gpu(V100_RESNET50_RATE, tb)
    avail_8gpu = 48 / 8.0
    avail_dgx2 = DGX2_CORES / DGX2_GPUS
    report.add_row("8-GPU server (2x24c)", V100_RESNET50_RATE, needed_v100,
                   avail_8gpu)
    report.add_row("DGX-2 (16 GPU, 48c)", V100_RESNET50_RATE, needed_v100,
                   avail_dgx2)

    report.check(
        "one Xeon core decodes ~300 ImageNet-scale JPEGs/s (S2.2)",
        250 <= per_core <= 350, f"measured {per_core:.0f}")
    report.check(
        "decode demand per V100 exceeds the cores an 8-GPU server offers "
        "(S2.2)", needed_v100 > avail_8gpu,
        f"{needed_v100:.1f} needed vs {avail_8gpu:.1f} available")
    report.check(
        "on DGX-2 each GPU can use at most ~3 cores — far below demand "
        "(S2.2)", needed_v100 > 4 * avail_dgx2,
        f"{needed_v100:.1f} needed vs {avail_dgx2:.1f} available")

    # -- measured: fleet-size sweep on repro.fleet.Host -------------------
    from .report import fmt_table
    ks = (1, 2, 4) if quick else (1, 2, 4, 6)
    sim_s = 0.5 if quick else 1.0
    sweep = [fleet_throughput(k, sim_s=sim_s) for k in ks]
    base = sweep[0]["served_rate"]
    rows = [(p["k"], f"{p['offered_rate']:,.0f}",
             f"{p['served_rate']:,.0f}",
             f"{p['served_rate'] / (p['k'] * base):.3f}",
             "yes" if p["conserved"] else "NO") for p in sweep]
    report.notes.append(
        f"measured fleet sweep ({FLEET_MODEL} bs={FLEET_BATCH}, "
        f"dlbooster hosts behind round-robin, offered 90% of the "
        f"aggregate knee, {sim_s:.1f}s horizon):")
    for line in fmt_table(
            ["K hosts", "offered/s", "served/s", "efficiency",
             "conserved"], rows).splitlines():
        report.notes.append("  " + line)

    knee = FLEET_BATCH / inference_batch_seconds(
        INFER_MODELS[FLEET_MODEL], FLEET_BATCH)
    report.check(
        "measured K=1 point is consistent with the analytic single-host "
        "knee (serves >= 97% of a 90%-knee offered load)",
        base >= 0.97 * 0.9 * knee,
        f"served {base:,.0f}/s vs offered {0.9 * knee:,.0f}/s "
        f"(knee {knee:,.0f}/s)")
    report.check(
        "fleet throughput scales linearly in K (hosts share nothing): "
        "per-host efficiency within 3% of the K=1 point",
        all(abs(p["served_rate"] / (p["k"] * base) - 1.0) <= 0.03
            for p in sweep),
        "; ".join(f"K={p['k']}: {p['served_rate'] / (p['k'] * base):.3f}"
                  for p in sweep))
    report.check(
        "every sweep point conserves requests end to end",
        all(p["conserved"] for p in sweep))
    return report
