"""Section 2.2 — the scalability argument, quantified.

"The NVIDIA Tesla V100 can process 5,000 images per second when
inferring the ResNet-50 model whereas each Xeon E5 CPU core can decode
only 300 images per second, and the demands on CPU cores to fully boost
GPUs' performance have already exceeded what such servers can offer
[...] in NVIDIA DGX-2, each GPU can use at most 3 cores on average."
"""

from __future__ import annotations

from ..calib import DEFAULT_TESTBED, Testbed
from .report import Report, timed

__all__ = ["run", "cores_needed_per_gpu"]

V100_RESNET50_RATE = 5_000.0   # img/s (S2.2)
DGX2_GPUS = 16
DGX2_CORES = 48


def cores_needed_per_gpu(gpu_rate: float,
                         testbed: Testbed = DEFAULT_TESTBED) -> float:
    """Decode cores required to keep one GPU of ``gpu_rate`` img/s fed."""
    per_core = 1.0 / testbed.cpu_decode_seconds(
        110_000, int(375 * 500 * 1.5))  # the 500x375 corpus image
    return gpu_rate / per_core


@timed
def run(quick: bool = False) -> Report:
    """Reproduce S2.2: decode-core demand vs availability."""
    tb = DEFAULT_TESTBED
    report = Report(
        experiment_id="sec2.2",
        title="Scalability: decode cores demanded per GPU vs cores "
              "available",
        columns=["platform", "gpu img/s", "cores needed/GPU",
                 "cores avail/GPU"])

    per_core = 1.0 / tb.cpu_decode_seconds(110_000, int(375 * 500 * 1.5))
    needed_v100 = cores_needed_per_gpu(V100_RESNET50_RATE, tb)
    avail_8gpu = 48 / 8.0
    avail_dgx2 = DGX2_CORES / DGX2_GPUS
    report.add_row("8-GPU server (2x24c)", V100_RESNET50_RATE, needed_v100,
                   avail_8gpu)
    report.add_row("DGX-2 (16 GPU, 48c)", V100_RESNET50_RATE, needed_v100,
                   avail_dgx2)

    report.check(
        "one Xeon core decodes ~300 ImageNet-scale JPEGs/s (S2.2)",
        250 <= per_core <= 350, f"measured {per_core:.0f}")
    report.check(
        "decode demand per V100 exceeds the cores an 8-GPU server offers "
        "(S2.2)", needed_v100 > avail_8gpu,
        f"{needed_v100:.1f} needed vs {avail_8gpu:.1f} available")
    report.check(
        "on DGX-2 each GPU can use at most ~3 cores — far below demand "
        "(S2.2)", needed_v100 > 4 * avail_dgx2,
        f"{needed_v100:.1f} needed vs {avail_dgx2:.1f} available")
    return report
