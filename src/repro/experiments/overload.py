"""Overload — deadline shedding keeps serving latency bounded.

The paper's serving evaluation (S5.3) is closed-loop: five clients with
a bounded window, so offered load can never exceed capacity and queues
never build.  Real front-ends are open-loop — arrivals do not slow down
because the server is behind — and an overloaded pipeline without
admission control grows its RX backlog without bound, dragging p99
latency up with queue depth (latency "collapses": every response is
late, goodput buys nothing).

This experiment goes beyond the paper: it drives the DLBooster serving
stack with an open-loop arrival process at ~2x the GPU's analytic
capacity and compares

* **no-shed** — plain backend, effectively unbounded RX ring: backlog
  and p99 grow linearly for as long as the run lasts;
* **shed** — a :class:`~repro.supervision.Supervisor` with a request
  deadline arms the RX queue (reject-on-admit + drop-expired-at-
  dequeue) and the reader/dispatcher boundaries, so expired work is
  discarded at the cheapest point instead of occupying the pipeline.

The shape checks encode the claim: with shedding, p99 stays within a
small multiple of the deadline and goodput stays near capacity, while
the no-shed baseline's second-half p99 dwarfs its first-half p99.
"""

from __future__ import annotations

import json
import math
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Optional

from ..backends import DLBoosterInferenceBackend
from ..calib import DEFAULT_TESTBED, INFER_MODELS
from ..data import jpeg_size_sampler
from ..engines import (CpuCorePool, GpuDevice, InferenceEngine,
                       inference_batch_seconds)
from ..host import BatchSpec
from ..net import Link, NetRequest, Nic
from ..sim import Environment, LatencyRecorder, SeedBank
from ..slo import (AVAILABILITY, HostShape, SLODefinition, SLOEvaluator,
                   default_rules, kpis_from_metrics)
from ..supervision import SupervisionConfig, Supervisor
from ..telemetry import MetricsRegistry
from .report import Report, timed

__all__ = ["run", "serve_open_loop", "OverloadResult"]


@dataclass
class OverloadResult:
    """One open-loop serving run (windowed over two half-runs)."""

    offered_rate: float          # requests/s injected
    goodput: float               # predictions/s over the second half
    p99_first_ms: float          # serving p99, first half of the run
    p99_second_ms: float         # serving p99, second half of the run
    backlog: int                 # RX queue depth at end of run
    shed_rx: int                 # shed at the NIC RX boundary
    shed_reader: int             # shed at the FPGAReader boundary
    shed_dispatcher: int         # shed items at the dispatcher boundary
    served: int                  # predictions over the whole run
    conserved: bool
    kpi: Optional[dict] = None   # repro-kpi/1 payload
    slo: Optional[dict] = field(default=None, repr=False)  # repro-slo/1

    @property
    def shed_total(self) -> int:
        return self.shed_rx + self.shed_reader + self.shed_dispatcher


def serve_open_loop(deadline_s: Optional[float] = None,
                    admission_margin_s: float = 0.0,
                    overload: float = 2.0,
                    sim_s: float = 4.0,
                    model: str = "googlenet",
                    batch_size: int = 4,
                    seed: int = 11,
                    with_registry: bool = False,
                    slo: bool = False) -> OverloadResult:
    """Open-loop arrivals straight into the RX ring at ``overload`` times
    the GPU's analytic capacity; with a ``deadline_s`` the stack runs
    supervised and sheds expired work, without one it queues forever.

    Arrivals bypass the client fabric (no wire time, no closed-loop
    window) — the point is server-side overload, so the 40 Gbps link is
    deliberately out of the picture.

    ``slo`` arms the in-sim evaluator in probe mode: this stack has no
    per-request done events, so an availability objective samples the
    cumulative (predictions, shed) counters once per tick and the
    multi-window burn alerts fire off those.  Observation-only, like
    every evaluator mode.  ``with_registry`` snapshots the pipeline's
    instruments into the result's KPI stage table.
    """
    env = Environment()
    seeds = SeedBank(seed)
    testbed = DEFAULT_TESTBED
    spec = INFER_MODELS[model]
    bspec = BatchSpec(batch_size=batch_size, out_h=spec.input_hw[0],
                      out_w=spec.input_hw[1], channels=spec.channels)
    registry = MetricsRegistry(name="overload") if with_registry else None
    with registry.installed() if registry is not None else nullcontext():
        cpu = CpuCorePool(env, testbed.cpu_cores)
        link = Link(env, testbed.nic_rate, mtu=testbed.nic_mtu)
        # RX ring sized so the no-shed baseline never drops: the backlog
        # is the measurement, not an artifact of ring exhaustion.
        nic = Nic(env, link, cpu.tracker,
                  per_packet_s=testbed.nic_per_packet_s,
                  rx_capacity=1 << 20)

        supervisor = None
        if deadline_s is not None:
            supervisor = Supervisor(env, SupervisionConfig(
                deadline_s=deadline_s,
                admission_margin_s=admission_margin_s))

        gpu = GpuDevice(env, testbed, 0)
        engine = InferenceEngine(env, gpu, spec, cpu, testbed,
                                 batch_size=batch_size)
        engine.start()
        backend = DLBoosterInferenceBackend(env, testbed, cpu, nic, bspec,
                                            supervisor=supervisor)
        backend.start([engine])

    capacity = batch_size / inference_batch_seconds(spec, batch_size)
    rate = overload * capacity
    gap = 1.0 / rate
    h, w = testbed.client_image_hw
    sampler = jpeg_size_sampler()
    rng = seeds.stream("overload-sizes")

    offered = {"n": 0}

    def _arrivals():
        rid = 0
        while True:
            yield env.timeout(gap)
            now = env.now
            req = NetRequest(
                request_id=rid, client_id=0,
                size_bytes=sampler(rng), height=h, width=w, channels=3,
                sent_at=now, received_at=now,
                deadline_at=(now + deadline_s
                             if deadline_s is not None else math.inf))
            rid += 1
            offered["n"] = rid
            if not nic.rx_queue.try_put(req):
                nic.drops.add()

    env.process(_arrivals(), name="overload-arrivals")

    evaluator = None
    if slo:
        def _probe():
            good = int(engine.predictions.total)
            bad = nic.rx_queue.shed_total
            if backend.reader is not None:
                bad += int(backend.reader.shed_expired.total)
            if backend.dispatcher is not None:
                bad += int(backend.dispatcher.items_shed.total)
            return good, bad

        evaluator = SLOEvaluator(
            env,
            [SLODefinition(
                name="availability", kind=AVAILABILITY, target=0.99,
                description="fraction of offered requests served "
                            "(shed work burns the budget)")],
            rules=default_rules(sim_s), period_s=sim_s / 80.0)
        evaluator.add_probe("availability", _probe)
        evaluator.start()

    half = sim_s / 2.0
    env.run(until=half)
    p99_first = engine.latency.p99()
    engine.latency = LatencyRecorder(name=f"{gpu.name}.latency")
    served_mark = int(engine.predictions.total)
    env.run(until=sim_s)

    reader = backend.reader
    result = OverloadResult(
        offered_rate=rate,
        goodput=(int(engine.predictions.total) - served_mark) / half,
        p99_first_ms=p99_first * 1e3,
        p99_second_ms=engine.latency.p99() * 1e3,
        backlog=len(nic.rx_queue),
        shed_rx=nic.rx_queue.shed_total,
        shed_reader=int(reader.shed_expired.total) if reader else 0,
        shed_dispatcher=(int(backend.dispatcher.items_shed.total)
                         if backend.dispatcher is not None else 0),
        served=int(engine.predictions.total),
        conserved=backend.conservation_ok())
    metrics_doc = (json.loads(registry.to_json(indent=0))
                   if registry is not None else {})
    result.kpi = kpis_from_metrics(
        metrics_doc, window_s=sim_s,
        traffic={"offered": offered["n"], "completed": result.served,
                 "shed": result.shed_total},
        shape=HostShape(cpu_cores=testbed.cpu_cores))
    if evaluator is not None:
        result.slo = evaluator.payload()
    return result


@timed
def run(quick: bool = False) -> Report:
    """Open-loop overload: shedding bounds p99, no-shed collapses."""
    sim_s = 2.0 if quick else 4.0
    # 25 ms budget; ~15 ms of that is in-pipeline time at saturation
    # (8 pool units + 3 trans batches of queueing at the GPU's rate,
    # plus decode and copy), which becomes the admission margin: the RX
    # boundary sheds requests whose slack no longer covers the pipeline.
    deadline_s = 0.025
    margin_s = 0.015
    report = Report(
        experiment_id="overload",
        title="Open-loop overload at 2x capacity (GoogLeNet / DLBooster "
              "serving, 1 GPU, 1 FPGA)",
        columns=["mode", "offered req/s", "goodput/s", "p99 1st-half ms",
                 "p99 2nd-half ms", "rx backlog", "shed", "conserved"])

    def add(label, res):
        report.add_row(label, res.offered_rate, res.goodput,
                       res.p99_first_ms, res.p99_second_ms, res.backlog,
                       res.shed_total, "yes" if res.conserved else "NO")

    noshed = serve_open_loop(deadline_s=None, sim_s=sim_s)
    add("no-shed", noshed)
    shed = serve_open_loop(deadline_s=deadline_s,
                           admission_margin_s=margin_s, sim_s=sim_s,
                           slo=True)
    add(f"shed ({deadline_s * 1e3:.0f} ms deadline)", shed)

    report.kpis = {"no-shed": noshed.kpi, "shed": shed.kpi}
    report.notes.append(
        "open-loop deterministic arrivals injected at the RX ring; "
        "client fabric wire time excluded by design")
    availability = shed.slo["objectives"][0]
    pages = [e for e in shed.slo["alert_log"]
             if e[2] == "page" and e[3] == "fire"]
    report.notes.append(
        f"SLO evaluator (probe mode): availability "
        f"{1.0 - availability['bad_frac']:.1%} vs target "
        f"{availability['target']:.0%}; first page alert at "
        + (f"t={pages[0][0]:.2f}s" if pages else "never"))

    report.check(
        "without shedding the RX backlog grows without bound",
        noshed.backlog > 1000 and noshed.backlog > 50 * max(shed.backlog, 1),
        f"no-shed backlog {noshed.backlog} vs shed {shed.backlog}")
    report.check(
        "without shedding p99 collapses (2nd half >> 1st half)",
        noshed.p99_second_ms >= 2.0 * max(noshed.p99_first_ms, 1e-6),
        f"{noshed.p99_first_ms:.1f} -> {noshed.p99_second_ms:.1f} ms")
    report.check(
        "deadline shedding keeps p99 bounded near the deadline",
        shed.p99_second_ms <= 2.0 * deadline_s * 1e3
        and shed.p99_second_ms <= 1.5 * max(shed.p99_first_ms, 1e-6),
        f"p99 {shed.p99_first_ms:.1f} -> {shed.p99_second_ms:.1f} ms "
        f"(deadline {deadline_s * 1e3:.0f} ms)")
    report.check(
        "shedding sustains goodput near capacity while overloaded",
        shed.goodput >= 0.70 * (noshed.offered_rate / 2.0),
        f"{shed.goodput:.0f}/s vs capacity "
        f"{noshed.offered_rate / 2.0:.0f}/s")
    report.check(
        "expired work is actually shed (counters > 0) and conserved",
        shed.shed_total > 0 and shed.conserved and noshed.conserved,
        f"shed rx={shed.shed_rx} reader={shed.shed_reader} "
        f"dispatcher={shed.shed_dispatcher}")
    report.check(
        "the no-shed baseline sheds nothing (control)",
        noshed.shed_total == 0,
        f"total {noshed.shed_total}")
    report.check(
        "sustained 2x overload burns the availability budget fast "
        "enough to page (multi-window burn-rate alert fires)",
        bool(pages) and not availability["met"],
        f"{len(pages)} page fire(s), availability budget consumed "
        f"{availability['budget_consumed']:.0f}x")
    return report
