"""Chaos fleet — fleet-scope faults vs. the recovery machinery.

PR 6's fleet degrades gracefully under *load*; this experiment asks
what it does under *faults*.  Fleet-site fault kinds (armed through
:class:`~repro.fleet.chaos.FleetChaos` from per-host-namespaced seed
streams) hit a K-host fleet at the knee, with and without the recovery
machinery — outlier ejection, in-flight re-dispatch, deadline-aware
hedging, all gated by one token-bucket retry budget:

* **host crash at the knee** — 1 of K hosts dies mid-run with work in
  flight.  With recovery ON, the HealthView marks it dead, stranded
  requests are re-dispatched within their deadlines, and the client
  p99 stays bounded; with recovery OFF the same crash black-holes the
  stranded requests until the deadline sweep expires them — the
  difference is the value of the machinery, measured on the same seed.
* **link partition** — the LB->host dispatch path drops for a window;
  budgeted alternate retries absorb it.
* **gray failure** — a host keeps admitting but swallows most
  completions (``host_hang``).  Supervisor-derived health can't see it
  (the host looks busy and healthy from the inside); balancer-side
  outlier ejection from client-observed EWMAs is what catches it.

Every scenario must conserve requests *exactly* under the duplicate
accounting (``flights == completed + redispatched_completed + expired
+ shed + failed + rejected + open``), and a same-seed rerun of both
crash arms must be byte-identical.  Arming chaos with an **empty**
fleet plan must also be byte-identical to not arming it at all — the
hooks are zero-cost.
"""

from __future__ import annotations

import json

from ..calib import DEFAULT_TESTBED
from ..faults import FaultPlan
from ..fleet import (FleetChaos, HealthView, Host, HostConfig,
                     LoadBalancer, OpenLoopSource, OutlierConfig,
                     RecoveryConfig, fleet_rollup, make_policy)
from ..sim import Environment, SeedBank
from ..slo import (HostShape, SLOEvaluator, default_rules,
                   default_serving_slos, kpis_from_rollup)
from ..supervision import SupervisionConfig
from ..telemetry import MetricsRegistry
from .fleet import (BATCH_SIZE, DEADLINE_S, HOST_CORES, MARGIN_S, MODEL,
                    single_host_knee)
from .report import Report, timed

__all__ = ["run", "serve_chaos", "default_recovery", "default_outlier"]


def default_recovery() -> RecoveryConfig:
    """Recovery settings used by the study: re-dispatch + hedging on, a
    generous-but-finite retry budget (2,000 tokens/s, burst 200)."""
    return RecoveryConfig(redispatch=True, hedging=True,
                          budget_rate_per_s=2000.0, budget_burst=200.0)


def default_outlier() -> OutlierConfig:
    """Outlier-ejection settings with the latency gate tied to the
    study's 25 ms client deadline."""
    return OutlierConfig(deadline_s=DEADLINE_S)


def _make_host(env: Environment, bank: SeedBank, index: int) -> Host:
    namespace = f"host{index:02d}"
    cfg = HostConfig(
        model=MODEL, backend="dlbooster", batch_size=BATCH_SIZE,
        cpu_cores=HOST_CORES, zone=f"az{index % 2}",
        supervision=SupervisionConfig(deadline_s=DEADLINE_S,
                                      admission_margin_s=MARGIN_S))
    return Host(env, cfg, seeds=bank.spawn(namespace), namespace=namespace)


def serve_chaos(plan=None, recovery=None, outlier=None,
                k: int = 4, overload_x: float = 2.8, sim_s: float = 1.5,
                seed: int = 47, policy: str = "least-loaded",
                with_registry: bool = False, slo=False) -> dict:
    """One chaos-armed fleet run; returns the rollup payload with an
    attached ``repro-kpi/1`` section.

    ``plan=None`` runs the completely unarmed PR 6 path (no FleetChaos
    object at all); an empty plan arms a controller that immediately
    reports inactive — the two must be byte-identical.  ``slo`` arms
    the observation-only in-sim SLO evaluator exactly as
    :func:`repro.experiments.fleet.serve_fleet` does.
    """
    env = Environment()
    bank = SeedBank(seed)
    registry = MetricsRegistry(name="chaos_fleet") if with_registry \
        else None

    def _build():
        hosts = []
        for i in range(k):
            host = _make_host(env, bank, i)
            host.start()
            hosts.append(host)
        chaos = None
        if plan is not None:
            chaos = FleetChaos(env, plan, seeds=bank.spawn("chaos"))
        balancer = LoadBalancer(
            env, hosts, make_policy(policy, rng=bank.stream("policy")),
            chaos=chaos, recovery=recovery)
        health = HealthView(env, balancer, outlier=outlier)
        balancer.attach_health(health)
        health.start()
        source = OpenLoopSource(
            env, balancer, rate=overload_x * single_host_knee(),
            image_hw=DEFAULT_TESTBED.client_image_hw,
            rng=bank.stream("arrivals"), num_clients=32,
            deadline_s=DEADLINE_S)
        source.start()
        return hosts, balancer, health, source, chaos

    if registry is not None:
        with registry.installed():
            hosts, balancer, health, source, chaos = _build()
    else:
        hosts, balancer, health, source, chaos = _build()
    evaluator = None
    if slo:
        opts = dict(slo) if isinstance(slo, dict) else {}
        period_s = opts.pop("period_s", sim_s / 40.0)
        evaluator = SLOEvaluator(
            env, default_serving_slos(DEADLINE_S, **opts),
            rules=default_rules(sim_s), period_s=period_s)
        evaluator.attach_source(source)
        evaluator.start()
    env.run(until=sim_s)
    health.update()
    # No extra sweep at the horizon: a reap scheduled outside env.run()
    # would count outcomes whose done-callbacks never execute.  Flights
    # past deadline but not yet swept stay ``open`` — conserved either
    # way.
    payload = fleet_rollup(hosts, balancer=balancer, source=source,
                           health=health, registry=registry,
                           deadline_s=DEADLINE_S, chaos=chaos)
    payload["kpi"] = kpis_from_rollup(
        payload, window_s=sim_s, shape=HostShape(cpu_cores=HOST_CORES))
    if evaluator is not None:
        payload["slo"] = evaluator.payload()
    return payload


def _conserved(payload: dict) -> bool:
    ok = (payload["fleet"]["conserved"]
          and payload["balancer"]["conserved"]
          and payload["source"]["conserved"])
    flights = payload.get("flights")
    if flights is not None:
        ok = ok and flights["request_ledger_ok"] \
            and flights["attempt_ledger_ok"]
    return ok


def _row(report: Report, label: str, payload: dict) -> None:
    fleet = payload["fleet"]
    flights = payload.get("flights", {})
    lb = payload.get("lb", {})
    report.add_row(
        label, int(payload["source"]["sent"]),
        fleet["completed"] if not flights
        else flights.get("completed", 0)
        + flights.get("redispatched_completed", 0),
        fleet["client_failures"],
        flights.get("blackholed", 0),
        lb.get("redispatches", 0), lb.get("hedges", 0),
        lb.get("retries", 0),
        fleet["client_p99_ms"]
        if fleet["client_p99_ms"] is not None else float("nan"),
        "yes" if _conserved(payload) else "NO")


def _run_scenarios(scenarios: list[tuple[str, dict]],
                   parallel: int) -> list[dict]:
    """Run (label, serve_chaos-kwargs) scenarios, optionally fanned out
    to worker processes.  Each scenario seeds its own SeedBank, so
    serial and parallel execution produce identical payloads."""
    if parallel > 1:
        from ..sweep import SweepPoint, run_sweep
        points = [SweepPoint(runner="chaos_serve", config=config,
                             label=label)
                  for label, config in scenarios]
        outcome = run_sweep(points, parallel=parallel)
        return [res["values"] for res in outcome.results]
    return [serve_chaos(**config) for _, config in scenarios]


@timed
def run(quick: bool = False, parallel: int = 1) -> Report:
    """Fleet chaos: crash/partition/gray-failure vs recovery on/off."""
    k = 3 if quick else 4
    sim_s = 1.0 if quick else 1.5
    # The knee point: offered load sized so the K-1 survivors can just
    # about absorb a crash (~0.93 knee per survivor) — recovery has
    # real headroom to matter, and its absence really black-holes.
    x = 0.7 * k
    crash_at = 0.4 * sim_s
    victim = "host01"
    report = Report(
        experiment_id="chaos_fleet",
        title=f"Fleet chaos: {k} hosts at {x:.1f}x the single-host "
              f"knee — host crash, link partition and gray failure "
              f"vs. ejection + re-dispatch + hedging",
        columns=["scenario", "sent", "served", "failed", "blackholed",
                 "redisp", "hedges", "retries", "client p99",
                 "conserved"])

    common = dict(k=k, overload_x=x, sim_s=sim_s)

    # -- host crash at the knee: recovery on vs off, same seed ----------
    # Re-dispatch only: at the knee the survivors have no headroom for
    # speculative duplicates (hedging is for the gray/partition arms,
    # where slow completions — not capacity — are the bottleneck).
    crash_recovery = RecoveryConfig(
        redispatch=True, hedging=False,
        budget_rate_per_s=2000.0, budget_burst=200.0)
    crash_plan = FaultPlan.of(FaultPlan.host_crash(crash_at, victim),
                              name="crash")
    part_plan = FaultPlan.of(
        FaultPlan.link_partition(0.3 * sim_s, 0.7 * sim_s, "host02"),
        name="partition")
    gray_plan = FaultPlan.of(
        FaultPlan.host_hang(0.3 * sim_s, sim_s, victim, rate=0.8),
        name="gray")
    scenarios = [
        # host crash at the knee: recovery on vs off, same seed
        ("crash-on", dict(plan=crash_plan, recovery=crash_recovery,
                          outlier=default_outlier(), **common)),
        ("crash-off", dict(plan=crash_plan, recovery=None, **common)),
        # link partition
        ("partition", dict(plan=part_plan, recovery=default_recovery(),
                           outlier=default_outlier(), **common)),
        # gray failure: ejection on vs off
        ("gray-on", dict(plan=gray_plan, recovery=default_recovery(),
                         outlier=default_outlier(), **common)),
        ("gray-off", dict(plan=gray_plan, recovery=default_recovery(),
                          outlier=None, **common)),
        # replays of both crash arms (byte-identity fingerprints)
        ("crash-on-2", dict(plan=crash_plan, recovery=crash_recovery,
                            outlier=default_outlier(), **common)),
        ("crash-off-2", dict(plan=crash_plan, recovery=None, **common)),
        # zero-cost hooks: empty plan vs no chaos object at all
        ("empty", dict(plan=FaultPlan.of(name="empty"), **common)),
        ("unarmed", dict(plan=None, **common)),
    ]
    (on, off, part, gray_on, gray_off, on2, off2, empty,
     unarmed) = _run_scenarios(scenarios, parallel)
    report.kpis = {"crash-on": on["kpi"], "crash-off": off["kpi"],
                   "partition": part["kpi"], "gray-on": gray_on["kpi"],
                   "gray-off": gray_off["kpi"]}
    _row(report, f"crash {victim}, recovery ON", on)
    _row(report, f"crash {victim}, recovery OFF", off)
    _row(report, "partition host02", part)
    _row(report, "gray-failure, ejection ON", gray_on)
    _row(report, "gray-failure, ejection OFF", gray_off)

    flights_on = on["flights"]
    report.notes.append(
        f"single-host knee {single_host_knee():,.0f} img/s; deadline "
        f"{DEADLINE_S * 1e3:.0f} ms; crash of {victim} at "
        f"t={crash_at:.2f}s with recovery budget "
        f"{default_recovery().budget_rate_per_s:,.0f} tok/s")
    report.notes.append(
        f"recovery ON crash arm: {flights_on['blackholed']} completions "
        f"black-holed, {flights_on['stranded_reclaimed']} stranded "
        f"attempts reclaimed, {flights_on['cancelled_duplicates']} "
        f"duplicates cancelled, {on['lb']['redispatches']} re-dispatches,"
        f" {on['lb']['hedges']} hedges, {on['lb']['retries']} retries")
    report.notes.append(
        "gray arm health transitions (ejection ON): "
        + ("; ".join(f"t={t:.2f}s {host} {a}->{b}"
                     for t, host, a, b, _ in
                     gray_on.get("health_transitions", [])) or "none"))

    report.check(
        "every chaos scenario conserves requests exactly under "
        "duplicate accounting",
        all(_conserved(p) for p in (on, off, part, gray_on, gray_off)))
    report.check(
        f"recovery ON keeps client p99 bounded (<= 2x deadline) while "
        f"killing 1 of {k} at the knee, with re-dispatch doing the work",
        on["fleet"]["client_p99_ms"] <= 2.0 * DEADLINE_S * 1e3
        and on["lb"]["redispatches"] > 0,
        f"client p99 {on['fleet']['client_p99_ms']:.1f} ms, "
        f"{on['lb']['redispatches']} re-dispatches")
    report.check(
        "recovery OFF demonstrates the black-holing baseline: stranded "
        "requests only ever expire at the deadline sweep",
        off["flights"]["expired"] > 0
        and off["flights"]["blackholed"] > 0
        and off["lb"]["redispatches"] == 0,
        f"expired {off['flights']['expired']}, blackholed "
        f"{off['flights']['blackholed']}")
    report.check(
        "recovery ON turns away fewer clients than recovery OFF on the "
        "same seed and crash",
        on["fleet"]["client_failures"] < off["fleet"]["client_failures"],
        f"failures ON={on['fleet']['client_failures']} vs "
        f"OFF={off['fleet']['client_failures']}")
    report.check(
        "both crash arms replay byte-identically from the same seed",
        json.dumps(on, sort_keys=True, default=str)
        == json.dumps(on2, sort_keys=True, default=str)
        and json.dumps(off, sort_keys=True, default=str)
        == json.dumps(off2, sort_keys=True, default=str))
    report.check(
        "link partition is absorbed by budgeted alternate retries",
        part["lb"]["link_drops"] > 0 and part["lb"]["retries"] > 0
        and part["fleet"]["client_p99_ms"] <= 2.0 * DEADLINE_S * 1e3,
        f"{part['lb']['link_drops']} drops, {part['lb']['retries']} "
        f"retries, client p99 {part['fleet']['client_p99_ms']:.1f} ms")
    report.check(
        "outlier ejection catches the gray-failing host (EJECTED "
        "transition) and beats no-ejection on client failures",
        any(b == "ejected" for _, host, _a, b, _r in
            gray_on.get("health_transitions", []) if host == victim)
        and gray_on["fleet"]["client_failures"]
        < gray_off["fleet"]["client_failures"],
        f"failures ejection ON={gray_on['fleet']['client_failures']} vs "
        f"OFF={gray_off['fleet']['client_failures']}")
    report.check(
        "all fleet fault kinds off => bit-identical to the unarmed "
        "PR 6 fleet path (zero-cost hooks)",
        json.dumps(empty, sort_keys=True, default=str)
        == json.dumps(unarmed, sort_keys=True, default=str))
    return report
