"""Figure 8 — online-inference latency (NIC receive -> prediction).

Paper findings: DLBooster lowest at every batch size; at batch 1 all
three are in the low-millisecond range (1.2 / 1.8 / 3.4 ms for
DLBooster / nvJPEG / CPU); nvJPEG's latency grows fastest with batch
(GPU-core competition); all three grow at large batch as engine time
dominates.
"""

from __future__ import annotations

from ..workflows import InferenceConfig, run_inference
from .fig7_infer_throughput import BACKENDS, batch_sweep
from .report import Report, timed

__all__ = ["run"]


@timed
def run(quick: bool = False, models=("googlenet", "vgg16", "resnet50")
        ) -> Report:
    """Reproduce Fig. 8: serving latency, loaded and unloaded."""
    warmup, measure = (0.8, 2.5) if quick else (1.0, 5.0)
    report = Report(
        experiment_id="fig8",
        title="Inference latency (ms, receive->prediction), fp16",
        columns=["model", "backend", "batch", "mean ms", "p99 ms"])

    lat: dict[tuple, float] = {}
    for model in models:
        for backend in BACKENDS:
            for bs in batch_sweep(model, quick):
                res = run_inference(InferenceConfig(
                    model=model, backend=backend, batch_size=bs,
                    warmup_s=warmup, measure_s=measure))
                lat[(model, backend, bs)] = res.latency_mean_ms
                report.add_row(model, backend, bs, res.latency_mean_ms,
                               res.latency_p99_ms)

    for model in models:
        sweep = batch_sweep(model, quick)
        for bs in sweep:
            dlb = lat[(model, "dlbooster", bs)]
            others = [lat[(model, b, bs)] for b in ("cpu-online", "nvjpeg")]
            report.check(
                f"DLBooster achieves the lowest latency on {model} at "
                f"batch {bs} (S5.3 (1))",
                dlb <= min(others) * 1.05,
                f"{dlb:.2f} ms vs {min(others):.2f} ms")
        # The paper's "ultralow" bs=1 numbers (1.2 / 1.8 / 3.4 ms) are
        # unloaded minima: measure them with exactly one batch in flight.
        unloaded = {}
        for backend in BACKENDS:
            unloaded[backend] = run_inference(InferenceConfig(
                model=model, backend=backend, batch_size=1,
                warmup_s=0.4, measure_s=1.0,
                unloaded=True)).latency_mean_ms
        report.notes.append(
            f"{model} unloaded bs=1 latency (paper: 1.2/1.8/3.4 ms): "
            f"DLBooster {unloaded['dlbooster']:.2f} / nvJPEG "
            f"{unloaded['nvjpeg']:.2f} / CPU {unloaded['cpu-online']:.2f}")
        report.check(
            f"unloaded bs=1 ordering DLBooster < nvJPEG < CPU on {model} "
            f"(Fig. 8: 1.2 < 1.8 < 3.4 ms)",
            unloaded["dlbooster"] < unloaded["nvjpeg"]
            < unloaded["cpu-online"], "")
        report.check(
            f"CPU-based unloaded latency ~2-3x DLBooster's at batch 1 on "
            f"{model} (Fig. 8: 3.4 vs 1.2 ms)",
            1.8 <= unloaded["cpu-online"] / unloaded["dlbooster"] <= 4.0,
            f"ratio {unloaded['cpu-online'] / unloaded['dlbooster']:.2f}x")
        report.check(
            f"latency increases with batch size on {model} (S5.3 (4))",
            lat[(model, "dlbooster", sweep[-1])]
            >= lat[(model, "dlbooster", 1)], "")
        nv_growth = (lat[(model, "nvjpeg", sweep[-1])]
                     / lat[(model, "nvjpeg", 1)])
        dlb_growth = (lat[(model, "dlbooster", sweep[-1])]
                      / lat[(model, "dlbooster", 1)])
        report.check(
            f"nvJPEG latency grows faster with batch than DLBooster's on "
            f"{model} (S5.3 (3))",
            nv_growth >= dlb_growth,
            f"nvJPEG x{nv_growth:.1f} vs DLBooster x{dlb_growth:.1f}")

    report.notes.append(
        "Absolute bs=1 latencies include ~2 batches of closed-loop "
        "queueing; the paper's 1.2/1.8/3.4 ms are unloaded minima — "
        "ordering and ratios are the reproduced shape.")
    return report
