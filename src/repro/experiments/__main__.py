"""CLI: regenerate every reproduced table/figure.

Usage:
    python -m repro.experiments                 # all, quick profile
    python -m repro.experiments fig5 fig7       # a subset
    python -m repro.experiments --full          # full sweeps (slow)
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from . import ALL_EXPERIMENTS, traced

# Experiments whose run() accepts parallel=N (point/scenario fan-out
# via repro.sweep; every other experiment ignores the flag).
PARALLEL_EXPERIMENTS = {"fig7", "fleet", "chaos_fleet"}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments", description=__doc__)
    parser.add_argument("experiments", nargs="*",
                        choices=[[], *ALL_EXPERIMENTS.keys()],
                        help="which to run (default: all)")
    parser.add_argument("--full", action="store_true",
                        help="full batch sweeps / long windows")
    parser.add_argument("--csv-dir", default=None,
                        help="also write each report's rows as CSV here")
    parser.add_argument("--json-dir", default=None,
                        help="also write each report (rows + checks) "
                             "as JSON here")
    parser.add_argument("--kpi-json", default=None, metavar="DIR",
                        help="also write each report's derived "
                             "repro-kpi/1 payloads (goodput, shed %%, "
                             "percentiles, $/M images) as JSON here")
    parser.add_argument("--trace-dir", default=None,
                        help="run traced smoke experiments and write "
                             "their Chrome-trace JSON (open in Perfetto) "
                             "into this directory")
    parser.add_argument("--profile", nargs="?", const=".", default=None,
                        metavar="DIR",
                        help="cProfile each experiment and dump "
                             "{slug}.pstats into DIR (default: cwd); "
                             "inspect with python -m pstats or snakeviz")
    parser.add_argument("--parallel", default=1, type=int, metavar="N",
                        help="fan point/scenario simulations out to N "
                             "worker processes (supported by: "
                             + ", ".join(sorted(PARALLEL_EXPERIMENTS))
                             + "; results identical to serial)")
    args = parser.parse_args(argv)

    if args.parallel < 1:
        parser.error(f"--parallel must be >= 1, got {args.parallel}")

    # Create every output directory up front: discovering an unwritable
    # --json-dir only at the first write — after the sweep has burned
    # minutes of simulation — wastes the whole run.
    for flag, path in (("--csv-dir", args.csv_dir),
                       ("--json-dir", args.json_dir),
                       ("--kpi-json", args.kpi_json),
                       ("--trace-dir", args.trace_dir),
                       ("--profile", args.profile)):
        if path is None:
            continue
        try:
            os.makedirs(path, exist_ok=True)
        except OSError as exc:
            print(f"cannot create {flag} directory {path!r}: {exc}",
                  file=sys.stderr)
            return 2

    keys = args.experiments or list(ALL_EXPERIMENTS)
    failures = 0
    for key in keys:
        # perf_counter, not time.time(): a monotonic clock, so wall
        # reports survive NTP steps / clock adjustments mid-run.
        t0 = time.perf_counter()
        kwargs = {"quick": not args.full}
        if args.parallel > 1 and key in PARALLEL_EXPERIMENTS:
            kwargs["parallel"] = args.parallel
        if args.profile is not None:
            import cProfile
            profiler = cProfile.Profile()
            profiler.enable()
            report = ALL_EXPERIMENTS[key](**kwargs)
            profiler.disable()
            pstats_path = os.path.join(
                args.profile, f"{key.replace('.', '_')}.pstats")
            profiler.dump_stats(pstats_path)
            print(f"  (profile -> {pstats_path})")
        else:
            report = ALL_EXPERIMENTS[key](**kwargs)
        print(report.render())
        slug = key.replace(".", "_")
        try:
            if args.csv_dir:
                with open(os.path.join(args.csv_dir, f"{slug}.csv"),
                          "w") as fh:
                    fh.write(report.to_csv())
            if args.json_dir:
                with open(os.path.join(args.json_dir, f"{slug}.json"),
                          "w") as fh:
                    fh.write(report.to_json())
            if args.kpi_json and report.kpis:
                with open(os.path.join(args.kpi_json,
                                       f"{slug}_kpi.json"), "w") as fh:
                    fh.write(report.kpis_json())
        except OSError as exc:
            print(f"cannot write report for {key}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"  ({time.perf_counter() - t0:.1f}s wall)")
        print()
        failures += len(report.failed_checks())
    if args.trace_dir:
        print("traced smoke runs:")
        traced.run_traced_smoke(args.trace_dir, quick=not args.full)
        print()
    if failures:
        print(f"{failures} shape check(s) FAILED", file=sys.stderr)
        return 1
    print("all shape checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
