"""Figure 9 — CPU cost in the inference experiments.

At the figures' batch sizes (GoogLeNet/VGG-16 at 32, ResNet-50 at 64):
CPU-based TensorRT burns 7-14 cores per GPU; nvJPEG ~1.5 (kernel
launching); DLBooster ~0.5.
"""

from __future__ import annotations

from ..calib import INFER_MODELS
from ..workflows import InferenceConfig, run_inference
from .report import Report, timed

__all__ = ["run"]

BACKENDS = ("cpu-online", "nvjpeg", "dlbooster")


@timed
def run(quick: bool = False, models=("googlenet", "vgg16", "resnet50")
        ) -> Report:
    """Reproduce Fig. 9: inference CPU cores per backend."""
    warmup, measure = (0.8, 2.5) if quick else (1.0, 5.0)
    report = Report(
        experiment_id="fig9",
        title="CPU cost in inference (cores; batch = 32, 32, 64)",
        columns=["model", "backend", "batch", "cores", "gpu decode busy"])

    cores: dict[tuple, float] = {}
    for model in models:
        bs = INFER_MODELS[model].batch_size
        for backend in BACKENDS:
            res = run_inference(InferenceConfig(
                model=model, backend=backend, batch_size=bs,
                warmup_s=warmup, measure_s=measure))
            cores[(model, backend)] = res.cpu_cores
            report.add_row(model, backend, bs, res.cpu_cores,
                           res.gpu_decode_util)

    for model in models:
        report.check(
            f"CPU-based TensorRT burns 7~14 cores on {model} (S5.3)",
            cores[(model, "cpu-online")] >= 6.0,
            f"measured {cores[(model, 'cpu-online')]:.1f}")
        report.check(
            f"nvJPEG consumes ~1.5 cores on {model} (S5.3)",
            0.8 <= cores[(model, "nvjpeg")] <= 3.0,
            f"measured {cores[(model, 'nvjpeg')]:.1f}")
        report.check(
            f"DLBooster consumes ~0.5 core on {model} (S5.3)",
            cores[(model, "dlbooster")] <= 1.2,
            f"measured {cores[(model, 'dlbooster')]:.2f}")
        report.check(
            f"DLBooster uses < 1/10 the CPU of the CPU-based backend on "
            f"{model} (abstract)",
            cores[(model, "cpu-online")]
            >= 8.0 * cores[(model, "dlbooster")],
            f"ratio {cores[(model, 'cpu-online')] / max(cores[(model, 'dlbooster')], 1e-9):.0f}x")
    return report
