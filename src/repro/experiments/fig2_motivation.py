"""Figure 2 — motivation: AlexNet training on P100s with Caffe.

(a) image-processing performance under the *default configuration*
    (few decode threads) for CPU-based and LMDB backends vs the GPU
    performance upper boundary;
(b) CPU cost when each backend is given whatever it needs to reach its
    *maximum* performance.

Paper annotations: CPU-based reaches ~25% of GPU performance by
default; LMDB loses ~30% at 2 GPUs; max-perf throughputs are annotated
2,346/4,363 (CPU), 2,446/3,200 (LMDB), 2,496/4,652 (ideal).
"""

from __future__ import annotations

from ..workflows import TrainingConfig, run_training
from .report import Report, timed

__all__ = ["run"]

# Caffe's out-of-the-box data layer: a couple of decode threads per GPU.
DEFAULT_CONFIG_WORKERS = 2


@timed
def run(quick: bool = False) -> Report:
    """Reproduce Fig. 2: default-config throughput + max-perf CPU cost."""
    warmup, measure = (1.0, 3.0) if quick else (2.0, 8.0)
    report = Report(
        experiment_id="fig2",
        title="Motivation: AlexNet/Caffe backends vs GPU bound "
              "(default-config throughput; CPU cost at max perf)",
        columns=["backend", "gpus", "mode", "img/s", "% of bound",
                 "cpu cores"])

    bounds = {}
    rows = {}
    for gpus in (1, 2):
        ideal = run_training(TrainingConfig(
            model="alexnet", backend="synthetic", num_gpus=gpus,
            warmup_s=warmup, measure_s=measure))
        bounds[gpus] = ideal.throughput
        report.add_row("upper-bound", gpus, "-", ideal.throughput, 100.0,
                       ideal.cpu_cores)
        for backend, mode, workers in [
                ("cpu-online", "default", DEFAULT_CONFIG_WORKERS * gpus),
                ("cpu-online", "max-perf", None),
                ("lmdb", "max-perf", None)]:
            res = run_training(TrainingConfig(
                model="alexnet", backend=backend, num_gpus=gpus,
                warmup_s=warmup, measure_s=measure, max_workers=workers))
            rows[(backend, mode, gpus)] = res
            report.add_row(backend, gpus, mode, res.throughput,
                           100.0 * res.throughput / ideal.throughput,
                           res.cpu_cores)

    # -- the paper's qualitative claims -----------------------------------
    frac_default = (rows[("cpu-online", "default", 1)].throughput
                    / bounds[1])
    report.check(
        "CPU-based Caffe reaches only ~25% of GPU performance in the "
        "default configuration (S2.2)",
        0.15 <= frac_default <= 0.40, f"measured {frac_default:.0%}")

    lmdb2 = rows[("lmdb", "max-perf", 2)].throughput / bounds[2]
    report.check(
        "LMDB-enabled Caffe downgrades throughput by ~30% at 2 GPUs "
        "(Fig. 2a)",
        0.60 <= lmdb2 <= 0.80, f"measured {1 - lmdb2:.0%} loss")

    lmdb1 = rows[("lmdb", "max-perf", 1)].throughput / bounds[1]
    report.check(
        "LMDB achieves high throughput during single-GPU training (S5.2)",
        lmdb1 >= 0.90, f"measured {lmdb1:.0%} of bound")

    cpu_cores = rows[("cpu-online", "max-perf", 1)].cpu_cores
    report.check(
        "CPU-based Caffe burns >>1 CPU cores per GPU at max performance "
        "(S2.2: 'more than 12 CPU cores per GPU')",
        cpu_cores >= 7.0, f"measured {cpu_cores:.1f} cores")

    cpu_max = rows[("cpu-online", "max-perf", 2)].throughput / bounds[2]
    report.check(
        "CPU-based backend approaches the bound when given cores "
        "(Fig. 2b: 4,363 vs 4,652)",
        cpu_max >= 0.85, f"measured {cpu_max:.0%}")
    return report
