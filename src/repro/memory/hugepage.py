"""HugePage-backed batch memory pool (paper Algorithm 2, S3.4.2).

DLBooster allocates one large (>1 GB in the paper) physically-contiguous
hugepage region at start-up, slices it into batch-sized units, and
recycles the units through a Free_Batch_Queue / Full_Batch_Queue pair.
Each unit records its physical address, virtual address and size; the
FPGA decoder is handed *physical* addresses (it cannot walk page
tables), the host side works on virtual ones, and ``phy2virt`` /
``virt2phy`` translate.

Here the region is a real ``numpy`` byte arena: virtual addresses are
offsets into it, the "physical" mapping is a fixed base translation
(hugepages are physically contiguous, which is the whole point of using
them), and buffer views alias the arena with zero copies — so
functional-mode pipelines move real decoded pixels through the exact
recycling protocol of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..sim import Environment, QueuePair, TimeWeighted

__all__ = ["MemoryUnit", "MemManager", "HugePageError"]

# Simulated physical placement of the hugepage region. Any constant
# works; a recognizable one makes address-translation bugs obvious.
_PHYS_BASE = 0x4000_0000


class HugePageError(RuntimeError):
    """Pool misuse: double recycle, foreign unit, or an address outside
    the hugepage region.

    Exhaustion is *not* misuse and never raises: ``get_item`` blocks
    until a unit is recycled and ``try_get_item`` returns ``None``.
    """


@dataclass
class MemoryUnit:
    """One slice of the hugepage arena, carrying a batch of processed data.

    Mirrors the paper's "memory piece" items: physical address, virtual
    address and memory size identify the unit (S3.4.2).
    """

    index: int
    phy_addr: int
    virt_addr: int
    size: int
    view: np.ndarray = field(repr=False)
    # Filled by producers as the unit travels the pipeline:
    payload: object = None
    item_count: int = 0
    used_bytes: int = 0

    def write(self, offset: int, data: np.ndarray) -> None:
        """Copy raw bytes into the unit at ``offset`` (DMA target path)."""
        flat = np.frombuffer(np.ascontiguousarray(data).tobytes(),
                             dtype=np.uint8)
        if offset < 0 or offset + flat.size > self.size:
            raise HugePageError(
                f"write of {flat.size} B at offset {offset} overflows "
                f"unit of {self.size} B")
        self.view[offset:offset + flat.size] = flat
        self.used_bytes = max(self.used_bytes, offset + flat.size)

    def read(self, offset: int, nbytes: int) -> np.ndarray:
        if offset < 0 or offset + nbytes > self.size:
            raise HugePageError("read outside unit bounds")
        return self.view[offset:offset + nbytes]

    def reset(self) -> None:
        self.payload = None
        self.item_count = 0
        self.used_bytes = 0

    def trace_ids(self) -> tuple[int, ...]:
        """trace_ids of the traced items riding this unit (empty when the
        payload is not an item list or nothing is traced)."""
        if not isinstance(self.payload, list):
            return ()
        traces = (getattr(item, "trace", None) for item in self.payload)
        return tuple(t.trace_id for t in traces if t is not None)


class MemManager:
    """The pool of :class:`MemoryUnit` plus the two batch queues.

    Implements the Table-1 surface: ``get_item`` / ``recycle_item`` /
    ``phy2virt`` / ``virt2phy``, and owns the ``free_batch_queue`` /
    ``full_batch_queue`` pair that connects FPGAReader to the Dispatcher.
    """

    def __init__(self, env: Environment, unit_size: int, unit_count: int,
                 name: str = "mempool", allocate_arena: bool = True):
        if unit_size <= 0 or unit_count <= 0:
            raise ValueError("unit_size and unit_count must be positive")
        self.env = env
        self.name = name
        self.unit_size = int(unit_size)
        self.unit_count = int(unit_count)
        self.arena_bytes = self.unit_size * self.unit_count
        # Algorithm 2 line 1: get_HugePage(size * counts). In 'modeled'
        # mode (allocate_arena=False) the arena is not materialised, only
        # the address bookkeeping — big experiments don't pay the RAM.
        self._arena: Optional[np.ndarray] = (
            np.zeros(self.arena_bytes, dtype=np.uint8) if allocate_arena
            else None)
        self._virt_base = id(self) & 0x7FFF_F000  # arbitrary, per-pool
        self.queues = QueuePair(env, capacity=unit_count, name=name)
        self._units: list[MemoryUnit] = []
        empty = np.empty(0, dtype=np.uint8)
        for index in range(self.unit_count):  # Algorithm 2 lines 2-5
            offset = index * self.unit_size
            view = (self._arena[offset:offset + self.unit_size]
                    if self._arena is not None else empty)
            unit = MemoryUnit(
                index=index,
                phy_addr=_PHYS_BASE + offset,
                virt_addr=self._virt_base + offset,
                size=self.unit_size,
                view=view)
            self._units.append(unit)
        self.queues.seed(list(self._units))
        self._free_set = set(range(self.unit_count))
        self.occupancy = TimeWeighted(env, 0, name=f"{name}.in_use")

    # -- Table 1 API -------------------------------------------------------
    @property
    def free_batch_queue(self):
        return self.queues.free

    @property
    def full_batch_queue(self):
        return self.queues.full

    def get_item(self):
        """Generator: obtain a free memory unit (blocks when exhausted —
        the backpressure that keeps FPGAReader from over-submitting)."""
        unit: MemoryUnit = yield from self.queues.free.get()
        self._free_set.discard(unit.index)
        self.occupancy.set(self.unit_count - len(self._free_set))
        return unit

    def try_get_item(self) -> Optional[MemoryUnit]:
        ok, unit = self.queues.free.try_get()
        if not ok:
            return None
        self._free_set.discard(unit.index)
        self.occupancy.set(self.unit_count - len(self._free_set))
        return unit

    def recycle_item(self, unit: MemoryUnit):
        """Generator: return a unit to the free queue for the next use."""
        self._check_owned(unit)
        if unit.index in self._free_set:
            raise HugePageError(f"double recycle of unit {unit.index}")
        unit.reset()
        self._free_set.add(unit.index)
        self.occupancy.set(self.unit_count - len(self._free_set))
        yield from self.queues.free.put(unit)

    def recycle_item_nowait(self, unit: MemoryUnit) -> None:
        """Non-blocking :meth:`recycle_item` for non-process callers.

        The free queue's capacity equals the unit count, so returning an
        owned, in-use unit can never block; used by FPGAReader when a
        fully-quarantined batch has nothing to hand downstream.
        """
        self._check_owned(unit)
        if unit.index in self._free_set:
            raise HugePageError(f"double recycle of unit {unit.index}")
        unit.reset()
        self._free_set.add(unit.index)
        self.occupancy.set(self.unit_count - len(self._free_set))
        if not self.queues.free.try_put(unit):
            raise HugePageError("free queue rejected an owned unit")

    def phy2virt(self, phy_addr: int) -> int:
        off = phy_addr - _PHYS_BASE
        if not 0 <= off < self.arena_bytes:
            raise HugePageError(f"physical address 0x{phy_addr:x} outside "
                                f"the hugepage region")
        return self._virt_base + off

    def virt2phy(self, virt_addr: int) -> int:
        off = virt_addr - self._virt_base
        if not 0 <= off < self.arena_bytes:
            raise HugePageError(f"virtual address 0x{virt_addr:x} outside "
                                f"the hugepage region")
        return _PHYS_BASE + off

    # -- helpers -------------------------------------------------------
    def unit_by_phy(self, phy_addr: int) -> MemoryUnit:
        off = phy_addr - _PHYS_BASE
        if not 0 <= off < self.arena_bytes:
            raise HugePageError(f"0x{phy_addr:x} outside region")
        return self._units[off // self.unit_size]

    def _check_owned(self, unit: MemoryUnit) -> None:
        if not (0 <= unit.index < self.unit_count
                and self._units[unit.index] is unit):
            raise HugePageError(f"unit {unit!r} does not belong to {self.name}")

    @property
    def in_use(self) -> int:
        return self.unit_count - len(self._free_set)

    def conservation_ok(self) -> bool:
        """Every unit is free, full, or in flight — never duplicated."""
        return (len(self.queues.free) + len(self.queues.full)
                + self.queues.in_flight() == self.unit_count)
