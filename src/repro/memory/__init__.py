"""HugePage batch memory pool (paper Algorithm 2)."""

from .hugepage import HugePageError, MemManager, MemoryUnit

__all__ = ["MemManager", "MemoryUnit", "HugePageError"]
