"""repro.slo — the decision layer over telemetry, tracing and fleets.

The raw signals (hierarchical metrics, causal traces, fleet rollups)
answer "what happened"; this package answers "is that OK, and what do
we buy next":

* :mod:`~repro.slo.kpis` — one strict ``repro-kpi/1`` payload (goodput,
  shed %, per-stage percentiles, §5.4-priced cost per million images)
  derived from any fleet rollup / metrics snapshot / sweep rollup;
* :mod:`~repro.slo.objectives` — declarative :class:`SLODefinition`s
  (availability, latency-threshold, integrity) with error budgets;
* :mod:`~repro.slo.burnrate` — :class:`SLOEvaluator`, a strictly
  observation-only periodic process evaluating Google-SRE-style
  multi-window burn-rate alerts on the simulation's event clock;
* :mod:`~repro.slo.planner` — the what-if capacity planner behind
  ``python -m repro.capacity``: binary-search the smallest fleet that
  serves rate R at p99 < X ms inside the error budget, over parallel
  multi-seed sweep runs of the fleet experiment.
"""

from .burnrate import BurnRateRule, SLOEvaluator, default_rules
from .kpis import (HostShape, compute_kpis, cost_section,
                   host_cost_per_hour, kpi_json, kpis_from_metrics,
                   kpis_from_rollup, kpis_from_sweep)
from .objectives import (AVAILABILITY, INTEGRITY, KINDS, LATENCY,
                         SLODefinition, default_serving_slos, verdict)
from .planner import (CapacityPlan, PlanSpec, evaluate_k, plan_capacity,
                      render_dashboard)

__all__ = [
    "compute_kpis", "kpis_from_rollup", "kpis_from_metrics",
    "kpis_from_sweep", "kpi_json", "HostShape", "host_cost_per_hour",
    "cost_section",
    "SLODefinition", "default_serving_slos", "verdict",
    "AVAILABILITY", "LATENCY", "INTEGRITY", "KINDS",
    "SLOEvaluator", "BurnRateRule", "default_rules",
    "PlanSpec", "CapacityPlan", "plan_capacity", "evaluate_k",
    "render_dashboard",
]
