"""KPI layer: one strict ``repro-kpi/1`` payload from any snapshot.

The raw observability documents — :func:`repro.fleet.fleet_rollup`
payloads, ``repro-metrics/1`` registry snapshots, merged
``repro-sweep/1`` rollups — record *everything*; a production decision
needs half a dozen derived numbers: goodput, shed %, failure %,
per-stage latency percentiles, and what the paper's §5.4 economics turn
throughput into — **cost per million images**.  :func:`compute_kpis`
derives exactly those, from whichever document it is handed, into one
schema every downstream consumer (SLO verdicts, the capacity planner's
dashboard, CI artifacts) reads instead of re-deriving raw counters
inconsistently.

Cost reuses the calibrated §5.4 pricing
(:mod:`repro.experiments.econ_analysis` / :class:`repro.calib.Testbed`):
a host's $/hour is core rental plus one-year straight-line amortization
of its FPGA cards plus electricity, and cost per million images prices
the fleet's hourly burn against its measured goodput.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Optional

from ..calib import DEFAULT_TESTBED, Testbed

__all__ = ["SCHEMA", "HostShape", "host_cost_per_hour", "cost_section",
           "compute_kpis", "kpis_from_rollup", "kpis_from_metrics",
           "kpis_from_sweep", "kpi_json"]

SCHEMA = "repro-kpi/1"

_STAGE_QUANTS = (("p50", "p50_ms"), ("p90", "p90_ms"),
                 ("p99", "p99_ms"), ("p99.9", "p99_9_ms"))


@dataclass(frozen=True)
class HostShape:
    """The per-host hardware a cost model prices (the cost-relevant
    slice of :class:`repro.fleet.HostConfig`)."""

    cpu_cores: int
    num_fpgas: int = 1
    num_gpus: int = 1

    def __post_init__(self):
        if self.cpu_cores < 1:
            raise ValueError("cpu_cores must be >= 1")
        if self.num_fpgas < 0 or self.num_gpus < 0:
            raise ValueError("device counts must be >= 0")


def host_cost_per_hour(shape: HostShape,
                       testbed: Testbed = DEFAULT_TESTBED) -> float:
    """$/hour to run one host: core rental (the §5.4 resale price —
    what serving those cores forgoes), FPGA cards amortized straight-
    line over one year, and electricity for every device."""
    cores = shape.cpu_cores * testbed.core_price_per_hour
    fpga_capex = (shape.num_fpgas * testbed.fpga_card_price
                  / testbed.hours_per_year)
    watts = (shape.cpu_cores / testbed.cpu_cores * testbed.cpu_power_w
             + shape.num_fpgas * testbed.fpga_power_w
             + shape.num_gpus * testbed.gpu_power_w)
    power = watts / 1000.0 * testbed.electricity_per_kwh
    return cores + fpga_capex + power


def cost_section(hosts: int, shape: Optional[HostShape],
                 goodput_per_s: Optional[float],
                 testbed: Testbed = DEFAULT_TESTBED) -> Optional[dict]:
    """The ``cost`` section: fleet $/hour and $/million-images at the
    measured goodput (``None`` fields where inputs are unknown)."""
    if shape is None:
        return None
    per_host = host_cost_per_hour(shape, testbed)
    fleet_per_hour = per_host * hosts
    per_million = None
    if goodput_per_s is not None and goodput_per_s > 0:
        images_per_hour = goodput_per_s * 3600.0
        per_million = fleet_per_hour / images_per_hour * 1e6
    return {
        "hosts": int(hosts),
        "host_cost_per_hour": per_host,
        "fleet_cost_per_hour": fleet_per_hour,
        "cost_per_million_images": per_million,
    }


def _pct(part: float, whole: float) -> float:
    return 100.0 * part / whole if whole else 0.0


def _stage_rows(metrics: Optional[dict]) -> dict:
    """Per-stage latency stats from a registry snapshot's ``latency``
    entries, seconds converted to milliseconds (None-safe: empty
    recorders were scrubbed to null on export)."""
    stages: dict[str, dict] = {}
    if not metrics:
        return stages
    for name in sorted(metrics):
        stats = metrics[name]
        if not isinstance(stats, dict) or stats.get("type") != "latency":
            continue
        row = {"count": int(stats.get("count") or 0),
               "mean_ms": _ms_or_none(stats.get("mean"))}
        for src, dst in _STAGE_QUANTS:
            row[dst] = _ms_or_none(stats.get(src))
        stages[name] = row
    return stages


def _ms_or_none(seconds) -> Optional[float]:
    if seconds is None:
        return None
    value = float(seconds)
    if not math.isfinite(value):
        return None
    return value * 1e3


def _critical_path_doc(critical_path) -> Optional[dict]:
    """Per-stage wait/service attribution (ms) from a
    CriticalPathAccumulator or its ``report()`` dict."""
    if critical_path is None:
        return None
    table = critical_path.report() if hasattr(critical_path, "report") \
        else critical_path
    return {stage: {"wait_ms": kinds.get("wait", 0.0) * 1e3,
                    "service_ms": kinds.get("service", 0.0) * 1e3}
            for stage, kinds in table.items()}


def kpis_from_rollup(payload: dict, *, window_s: Optional[float] = None,
                     shape: Optional[HostShape] = None,
                     testbed: Testbed = DEFAULT_TESTBED,
                     critical_path=None) -> dict:
    """KPIs of one fleet rollup payload (:func:`repro.fleet.fleet_rollup`).

    Traffic counts prefer the client's ledger (the ``source`` section —
    one outcome per issued request) over server-side host counters,
    which double-count retried/hedged attempts when recovery is armed.
    """
    fleet = payload["fleet"]
    source = payload.get("source")
    balancer = payload.get("balancer")
    rejected = int(balancer["rejected"]) if balancer else 0
    if source is not None:
        offered = int(source["sent"])
        completed = int(source["completed"])
        failed = int(source["failed"])
        expired = int(source["expired"])
    else:
        offered = int(fleet["handled"]) + rejected
        completed = int(fleet["completed"])
        failed = int(fleet["failed"])
        expired = 0
    shed = int(fleet["shed"])
    goodput = fleet.get("goodput_per_s")
    if goodput is None and window_s:
        goodput = completed / window_s
    offered_rate = offered / window_s if window_s else None
    traffic = {
        "offered": offered,
        "completed": completed,
        "failed": failed,
        "expired": expired,
        "rejected": rejected,
        "shed": shed,
        "goodput_per_s": goodput,
        "offered_per_s": offered_rate,
        "shed_pct": fleet.get("shed_pct",
                              _pct(shed, int(fleet["handled"]))),
        "failure_pct": _pct(offered - completed, offered),
        "conserved": bool(fleet.get("conserved", True)),
    }
    latency = {
        "count": int(fleet.get("latency_count") or 0),
        "mean_ms": fleet.get("mean_ms"),
        "p50_ms": fleet.get("p50_ms"),
        "p99_ms": fleet.get("p99_ms"),
        "p99_9_ms": fleet.get("p999_ms"),
        "client_p50_ms": fleet.get("client_p50_ms"),
        "client_p99_ms": fleet.get("client_p99_ms"),
    }
    return {
        "schema": SCHEMA,
        "source": "fleet-rollup",
        "window_s": window_s,
        "traffic": traffic,
        "latency": latency,
        "stages": _stage_rows(payload.get("metrics")),
        "critical_path": _critical_path_doc(critical_path),
        "cost": cost_section(int(fleet["hosts"]), shape, goodput, testbed),
    }


def kpis_from_metrics(doc: dict, *, window_s: Optional[float] = None,
                      traffic: Optional[dict] = None,
                      shape: Optional[HostShape] = None,
                      hosts: int = 1,
                      testbed: Testbed = DEFAULT_TESTBED,
                      critical_path=None) -> dict:
    """KPIs of one ``repro-metrics/1`` snapshot (or a bare registry
    snapshot mapping).

    A registry knows latencies, not request outcomes, so the caller
    supplies the ``traffic`` counts (offered/completed/shed/...); the
    derived rates and percentages are filled in here.
    """
    metrics = doc.get("metrics", doc)
    traffic = dict(traffic or {})
    completed = traffic.get("completed")
    offered = traffic.get("offered")
    goodput = traffic.get("goodput_per_s")
    if goodput is None and completed is not None and window_s:
        goodput = completed / window_s
    traffic.setdefault("shed", 0)
    traffic["goodput_per_s"] = goodput
    traffic["offered_per_s"] = (offered / window_s
                                if offered is not None and window_s
                                else None)
    # Shed work is part of the offered load when the caller counted it
    # there; otherwise the denominator is what was served plus shed.
    denominator = offered if offered is not None \
        else (completed or 0) + traffic["shed"]
    traffic["shed_pct"] = _pct(traffic["shed"], denominator or 0)
    traffic["failure_pct"] = (
        _pct(offered - completed, offered)
        if offered is not None and completed is not None else None)
    return {
        "schema": SCHEMA,
        "source": "metrics",
        "window_s": window_s,
        "traffic": traffic,
        "latency": None,
        "stages": _stage_rows(metrics),
        "critical_path": _critical_path_doc(critical_path),
        "cost": cost_section(hosts, shape, goodput, testbed),
    }


def kpis_from_sweep(rollup: dict, *, window_s: Optional[float] = None,
                    shape: Optional[HostShape] = None,
                    testbed: Testbed = DEFAULT_TESTBED) -> dict:
    """KPIs of a merged ``repro-sweep/1`` rollup: one per-point KPI for
    every point whose values are a fleet rollup payload, plus a stage
    table from the sweep's merged latency reservoirs."""
    per_point = []
    for point in rollup.get("points", []):
        values = point.get("values") or {}
        if isinstance(values, dict) and "fleet" in values \
                and "per_host" in values:
            kpi = kpis_from_rollup(values, window_s=window_s,
                                   shape=shape, testbed=testbed)
            per_point.append({"label": point.get("label", ""),
                              "seed": point.get("seed"),
                              "kpi": kpi})
    stages = {}
    for name in sorted(rollup.get("merged_latency", {})):
        stats = rollup["merged_latency"][name]
        stages[name] = {
            "count": int(stats.get("count") or 0),
            "mean_ms": _ms_or_none(stats.get("mean")),
            "p50_ms": _ms_or_none(stats.get("p50")),
            "p90_ms": _ms_or_none(stats.get("p90")),
            "p99_ms": _ms_or_none(stats.get("p99")),
            "p99_9_ms": _ms_or_none(stats.get("p999")),
        }
    return {
        "schema": SCHEMA,
        "source": "sweep",
        "window_s": window_s,
        "traffic": None,
        "latency": None,
        "stages": stages,
        "critical_path": None,
        "cost": None,
        "points": per_point,
    }


def compute_kpis(doc: dict, **kwargs) -> dict:
    """Dispatch on the document's shape: fleet rollup payloads,
    ``repro-metrics/1`` snapshots, or merged ``repro-sweep/1`` rollups
    all land in the same ``repro-kpi/1`` schema."""
    if not isinstance(doc, dict):
        raise TypeError(f"expected a payload dict, got {type(doc).__name__}")
    schema = doc.get("schema", "")
    if schema.startswith("repro-sweep/"):
        return kpis_from_sweep(doc, **kwargs)
    if "fleet" in doc and "per_host" in doc:
        return kpis_from_rollup(doc, **kwargs)
    if schema.startswith("repro-metrics/") or all(
            isinstance(v, dict) and "type" in v for v in doc.values()):
        return kpis_from_metrics(doc, **kwargs)
    raise ValueError(
        "unrecognized payload: expected a fleet rollup, a "
        "repro-metrics/1 snapshot, or a repro-sweep/1 rollup "
        f"(got schema={schema!r} keys={sorted(doc)[:6]})")


def _scrub(value):
    """Non-finite floats -> null so the export is strict JSON."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: _scrub(v) for key, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_scrub(v) for v in value]
    return value


def kpi_json(payload: dict, indent: int = 2) -> str:
    """Strict-JSON serialization of a ``repro-kpi/1`` payload (sorted
    keys, NaN-free — byte-stable for a given payload)."""
    return json.dumps(_scrub(payload), indent=indent, sort_keys=True,
                      allow_nan=False)
