"""Multi-window burn-rate alerting evaluated *inside* the simulation.

The Google SRE workbook's alerting recipe: track how fast the error
budget is burning over a **fast** window (catches sudden outages with
low detection latency) and a **slow** window (suppresses blips), and
page only when *both* exceed the same burn-rate factor.  A burn rate of
1.0 means bad events arrive exactly at the budgeted rate; a factor-10
alert means the budget is being consumed 10x too fast.

:class:`SLOEvaluator` runs this on the simulation's event clock: a
periodic process snapshots cumulative good/bad counts per objective and
evaluates every (objective, rule) pair against the windowed history.

**Observation-only guarantee** (the same contract PR 4's tracing
established): the evaluator keeps its state in plain Python ints and
lists — never sim instruments (which would register in an ambient
MetricsRegistry and change snapshots), never RNG draws.  Its periodic
process only ever yields timeouts; extra events shift event-id
allocation but creation order — and with it every (time, eid) tie-break
among *other* events — is preserved, so all simulated metrics are
bit-identical with the evaluator on or off.  Tests pin this A/B.

Two feeding modes:

* :meth:`SLOEvaluator.attach_source` observes an
  :class:`~repro.fleet.OpenLoopSource`: each request's done event
  classifies it per objective (good/bad, latency-aware) at completion
  time — exact per-request accounting;
* :meth:`SLOEvaluator.add_probe` samples a cumulative ``(good, bad)``
  callable each tick — for stacks without per-request done events
  (e.g. the overload experiment's raw pipeline, watching prediction
  vs. shed counters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .objectives import LATENCY, SLODefinition, verdict

__all__ = ["BurnRateRule", "SLOEvaluator", "default_rules", "SCHEMA"]

SCHEMA = "repro-slo/1"


@dataclass(frozen=True)
class BurnRateRule:
    """One fast/slow window pair with its alerting burn factor."""

    label: str
    fast_window_s: float
    slow_window_s: float
    factor: float

    def __post_init__(self):
        if self.fast_window_s <= 0 or self.slow_window_s <= 0:
            raise ValueError("burn-rate windows must be positive")
        if self.fast_window_s >= self.slow_window_s:
            raise ValueError(
                f"fast window ({self.fast_window_s}s) must be shorter "
                f"than slow window ({self.slow_window_s}s)")
        if self.factor < 1.0:
            raise ValueError("burn factor below 1.0 would alert inside "
                             "the budget")

    def to_doc(self) -> dict:
        return {"label": self.label, "fast_window_s": self.fast_window_s,
                "slow_window_s": self.slow_window_s, "factor": self.factor}


def default_rules(horizon_s: float) -> list[BurnRateRule]:
    """Window pairs scaled to a simulated horizon.

    Production rules span minutes to days; a simulation spans seconds.
    Keeping the SRE shape — fast ~ 1/40 of the compliance period with a
    high factor, slow ~ 1/4 with a low factor — scaled down to the run:
    """
    return [
        BurnRateRule(label="page", fast_window_s=horizon_s / 40.0,
                     slow_window_s=horizon_s / 8.0, factor=10.0),
        BurnRateRule(label="ticket", fast_window_s=horizon_s / 8.0,
                     slow_window_s=horizon_s / 2.0, factor=2.0),
    ]


class _Objective:
    """Evaluator-private state for one SLO: cumulative counts, snapshot
    history, and per-rule alert latches."""

    __slots__ = ("slo", "probe", "good", "bad", "history", "firing",
                 "alerts")

    def __init__(self, slo: SLODefinition,
                 probe: Optional[Callable[[], tuple[float, float]]] = None):
        self.slo = slo
        self.probe = probe
        self.good = 0
        self.bad = 0
        # (t, good, bad) cumulative snapshots, appended once per tick.
        self.history: list[tuple[float, float, float]] = []
        self.firing: dict[str, bool] = {}
        self.alerts = 0

    def counts(self) -> tuple[float, float]:
        if self.probe is not None:
            good, bad = self.probe()
            return float(good), float(bad)
        return float(self.good), float(self.bad)

    def window_burn(self, now: float, window_s: float) -> float:
        """Burn rate over the trailing window: the window's bad fraction
        divided by the error budget (0.0 on an empty window)."""
        if not self.history:
            return 0.0
        t_lo = now - window_s
        # Latest snapshot at or before the window start (step lookup —
        # deterministic, no interpolation).  Before any snapshot that
        # old exists, the window starts from zero counts.
        lo_good = lo_bad = 0.0
        for t, good, bad in reversed(self.history):
            if t <= t_lo:
                lo_good, lo_bad = good, bad
                break
        hi_good, hi_bad = self.history[-1][1], self.history[-1][2]
        dg, db = hi_good - lo_good, hi_bad - lo_bad
        total = dg + db
        if total <= 0:
            return 0.0
        return (db / total) / self.slo.error_budget


class SLOEvaluator:
    """Periodic in-sim evaluator: good/bad accounting, multi-window
    burn rates, and an alert transition log on the event clock."""

    def __init__(self, env, objectives: list[SLODefinition],
                 rules: Optional[list[BurnRateRule]] = None,
                 period_s: float = 0.05):
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        if not objectives:
            raise ValueError("need at least one SLODefinition")
        names = [slo.name for slo in objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names: {names}")
        self.env = env
        self.period_s = period_s
        self.rules = list(rules) if rules is not None else []
        self._objectives: dict[str, _Objective] = {
            slo.name: _Objective(slo) for slo in objectives}
        # (t, slo, rule, event, burn_fast, burn_slow) transitions.
        self.alert_log: list[tuple[float, str, str, str, float, float]] = []
        self.ticks = 0
        self._started = False

    # -- feeding -------------------------------------------------------
    def add_probe(self, name: str,
                  probe: Callable[[], tuple[float, float]]) -> None:
        """Feed objective ``name`` from a cumulative ``(good, bad)``
        callable sampled once per tick (instead of per-request events)."""
        self._objectives[name].probe = probe

    def attach_source(self, source) -> None:
        """Observe an OpenLoopSource: classify every request outcome at
        its done event.  Objectives fed by a probe are left alone."""
        source.observers.append(self._observe)

    def _observe(self, request, event) -> None:
        ok = event._ok
        latency = (self.env.now - request.sent_at) if ok else None
        for obj in self._objectives.values():
            if obj.probe is not None:
                continue
            if obj.slo.classify(ok, latency):
                obj.good += 1
            else:
                obj.bad += 1

    # -- the periodic process ------------------------------------------
    def start(self) -> None:
        if self._started:
            raise RuntimeError("evaluator already started")
        self._started = True
        self.env.process(self._loop(), name="slo-evaluator")

    def _loop(self):
        while True:
            yield self.env.timeout(self.period_s)
            self._tick()

    def _tick(self) -> None:
        now = self.env.now
        self.ticks += 1
        for obj in self._objectives.values():
            good, bad = obj.counts()
            obj.history.append((now, good, bad))
            for rule in self.rules:
                fast = obj.window_burn(now, rule.fast_window_s)
                slow = obj.window_burn(now, rule.slow_window_s)
                firing = fast >= rule.factor and slow >= rule.factor
                was = obj.firing.get(rule.label, False)
                if firing != was:
                    obj.firing[rule.label] = firing
                    kind = "fire" if firing else "resolve"
                    if firing:
                        obj.alerts += 1
                    self.alert_log.append(
                        (now, obj.slo.name, rule.label, kind, fast, slow))

    # -- results -------------------------------------------------------
    def verdicts(self) -> list[dict]:
        """End-of-run verdict per objective (cumulative counts)."""
        out = []
        for name in sorted(self._objectives):
            obj = self._objectives[name]
            good, bad = obj.counts()
            out.append(verdict(obj.slo, int(good), int(bad)))
        return out

    def payload(self) -> dict:
        """The deterministic ``repro-slo/1`` document: objective
        verdicts, burn-rate rules, and the alert transition timeline."""
        objectives = []
        for name in sorted(self._objectives):
            obj = self._objectives[name]
            good, bad = obj.counts()
            doc = verdict(obj.slo, int(good), int(bad))
            doc.update(obj.slo.to_doc())
            doc["alerts"] = obj.alerts
            doc["firing"] = sorted(label for label, on in
                                   obj.firing.items() if on)
            objectives.append(doc)
        return {
            "schema": SCHEMA,
            "period_s": self.period_s,
            "ticks": self.ticks,
            "rules": [rule.to_doc() for rule in self.rules],
            "objectives": objectives,
            "alert_log": [[t, slo, rule, kind, fast, slow]
                          for t, slo, rule, kind, fast, slow
                          in self.alert_log],
        }
