"""Capacity planner: "what fleet serves rate R at p99 < X ms?".

The what-if layer over everything below it: candidate fleet sizes K are
evaluated by actually *running* the PR 6 fleet experiment's serving
scenario (multi-seed, fanned out through :mod:`repro.sweep`), deriving
KPIs and SLO verdicts from each run, and binary-searching the smallest
K whose every seed meets the objectives.  Feasibility is monotone in K
for an open-loop offered rate — more hosts, more capacity — which is
what makes binary search sound; every probed K is kept for the
dashboard's per-K table either way.

Everything in the plan document is a deterministic function of
``(spec, seeds)`` — simulated results only, no wall-clock — so the
emitted dashboard (markdown + JSON) is byte-identical across reruns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .kpis import HostShape, kpi_json

__all__ = ["PlanSpec", "CapacityPlan", "evaluate_k", "plan_capacity",
           "render_dashboard"]


@dataclass(frozen=True)
class PlanSpec:
    """The question: serve ``rate`` img/s with client-perceived p99
    under ``p99_ms``, inside the availability error budget."""

    rate: float                       # offered load, img/s
    p99_ms: float                     # client-perceived p99 target
    availability: float = 0.99        # availability SLO target
    latency_target: float = 0.99      # fraction required under deadline
    k_min: int = 1
    k_max: int = 8
    seeds: tuple = (23,)
    sim_s: float = 1.0
    policy: str = "least-loaded"

    def __post_init__(self):
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.p99_ms <= 0:
            raise ValueError("p99_ms must be positive")
        if not 0.0 < self.availability < 1.0:
            raise ValueError("availability must be in (0, 1)")
        if self.k_min < 1 or self.k_max < self.k_min:
            raise ValueError(f"need 1 <= k_min <= k_max, got "
                             f"[{self.k_min}, {self.k_max}]")
        if not self.seeds:
            raise ValueError("need at least one seed")
        if self.sim_s <= 0:
            raise ValueError("sim_s must be positive")

    def to_doc(self) -> dict:
        return {"rate": self.rate, "p99_ms": self.p99_ms,
                "availability": self.availability,
                "latency_target": self.latency_target,
                "k_min": self.k_min, "k_max": self.k_max,
                "seeds": list(self.seeds), "sim_s": self.sim_s,
                "policy": self.policy}


def _seed_row(seed: Optional[int], payload: dict, spec: PlanSpec) -> dict:
    """Distill one fleet run into the planner's per-seed verdict row."""
    kpi = payload["kpi"]
    slo = payload.get("slo") or {}
    traffic, latency = kpi["traffic"], kpi["latency"]
    client_p99 = latency["client_p99_ms"]
    verdicts = {obj["name"]: obj for obj in slo.get("objectives", [])}
    availability_ok = all(
        obj["met"] for obj in verdicts.values()
        if obj["kind"] == "availability") if verdicts else (
            traffic["failure_pct"] <= 100.0 * (1.0 - spec.availability))
    p99_ok = client_p99 is not None and client_p99 <= spec.p99_ms
    cost = kpi.get("cost") or {}
    return {
        "seed": seed,
        "feasible": bool(p99_ok and availability_ok
                         and traffic["conserved"]),
        "client_p99_ms": client_p99,
        "goodput_per_s": traffic["goodput_per_s"],
        "shed_pct": traffic["shed_pct"],
        "failure_pct": traffic["failure_pct"],
        "conserved": traffic["conserved"],
        "cost_per_million_images": cost.get("cost_per_million_images"),
        "slo": [{key: obj[key] for key in
                 ("name", "kind", "met", "bad_frac", "budget_consumed",
                  "alerts")}
                for obj in (verdicts[name] for name in sorted(verdicts))],
        "alert_log": slo.get("alert_log", []),
    }


def evaluate_k(k: int, spec: PlanSpec, knee: float,
               parallel: int = 1) -> dict:
    """Run the fleet scenario at size ``k`` for every seed (through the
    sweep runner, so seeds fan out to workers) and fold the verdicts."""
    from ..sweep import SweepPoint, run_sweep
    config = {
        "policy": spec.policy, "k": k,
        "overload_x": spec.rate / knee,
        "sim_s": spec.sim_s, "degraded_host": -1,
        "slo": {"availability": spec.availability,
                "latency_target": spec.latency_target},
    }
    points = [SweepPoint(runner="fleet_serve", config=config, seed=seed,
                         label=f"k{k}/s{seed}")
              for seed in spec.seeds]
    # reuse_pool: the planner probes many k values in a search loop —
    # the shared warm pool amortizes worker startup across probes.
    outcome = run_sweep(points, parallel=min(parallel, len(points)),
                        reuse_pool=parallel > 1)
    rows = [_seed_row(seed, result["values"], spec)
            for seed, result in zip(spec.seeds, outcome.results)]
    worst_p99 = None
    p99s = [row["client_p99_ms"] for row in rows
            if row["client_p99_ms"] is not None]
    if len(p99s) == len(rows) and p99s:
        worst_p99 = max(p99s)
    goodputs = [row["goodput_per_s"] for row in rows
                if row["goodput_per_s"] is not None]
    costs = [row["cost_per_million_images"] for row in rows
             if row["cost_per_million_images"] is not None]
    return {
        "k": k,
        "feasible": all(row["feasible"] for row in rows),
        "worst_client_p99_ms": worst_p99,
        "mean_goodput_per_s": (sum(goodputs) / len(goodputs)
                               if goodputs else None),
        "mean_cost_per_million_images": (sum(costs) / len(costs)
                                         if costs else None),
        "seeds": rows,
    }


@dataclass
class CapacityPlan:
    """A finished what-if plan: every probed K plus the recommendation."""

    spec: PlanSpec
    knee: float                        # single-host capacity, img/s
    host_shape: HostShape
    evaluated: dict[int, dict] = field(default_factory=dict)
    recommended_k: Optional[int] = None

    @property
    def feasible(self) -> bool:
        return self.recommended_k is not None

    @property
    def headroom(self) -> Optional[float]:
        """Analytic capacity of the recommended fleet over the offered
        rate — how much growth the recommendation absorbs before the
        next resize."""
        if self.recommended_k is None:
            return None
        return self.recommended_k * self.knee / self.spec.rate

    def to_doc(self) -> dict:
        return {
            "schema": "repro-capacity/1",
            "spec": self.spec.to_doc(),
            "single_host_knee_per_s": self.knee,
            "host_shape": {"cpu_cores": self.host_shape.cpu_cores,
                           "num_fpgas": self.host_shape.num_fpgas,
                           "num_gpus": self.host_shape.num_gpus},
            "evaluated": [self.evaluated[k]
                          for k in sorted(self.evaluated)],
            "recommended_k": self.recommended_k,
            "feasible": self.feasible,
            "headroom": self.headroom,
        }

    def to_json(self) -> str:
        return kpi_json(self.to_doc())


def plan_capacity(spec: PlanSpec, parallel: int = 1,
                  progress=None) -> CapacityPlan:
    """Binary-search the smallest feasible fleet size in
    ``[spec.k_min, spec.k_max]``.

    ``progress`` (optional) is called with a line of text per probed K —
    the CLI's live narration; library callers leave it None.
    """
    from ..experiments.fleet import HOST_CORES, single_host_knee
    knee = single_host_knee()
    plan = CapacityPlan(spec=spec, knee=knee,
                        host_shape=HostShape(cpu_cores=HOST_CORES))

    def probe(k: int) -> bool:
        if k not in plan.evaluated:
            plan.evaluated[k] = evaluate_k(k, spec, knee,
                                           parallel=parallel)
            if progress is not None:
                ev = plan.evaluated[k]
                word = "feasible" if ev["feasible"] else "NOT feasible"
                p99 = ev["worst_client_p99_ms"]
                detail = (f"worst client p99 {p99:.1f} ms"
                          if p99 is not None else "no latency samples")
                progress(f"K={k}: {word} ({detail})")
        return plan.evaluated[k]["feasible"]

    if probe(spec.k_max):
        lo, hi = spec.k_min, spec.k_max
        while lo < hi:
            mid = (lo + hi) // 2
            if probe(mid):
                hi = mid
            else:
                lo = mid + 1
        plan.recommended_k = hi
    return plan


def _fmt(value, pattern="{:.1f}", missing="-") -> str:
    return pattern.format(value) if value is not None else missing


def render_dashboard(plan: CapacityPlan) -> str:
    """The markdown dashboard: spec, per-K KPI/SLO table, the
    recommended K's alert timeline, and the recommendation."""
    spec = plan.spec
    lines = [
        "# Capacity plan",
        "",
        f"Serve **{spec.rate:,.0f} img/s** with client-perceived "
        f"p99 < **{spec.p99_ms:g} ms** at "
        f"**{spec.availability:.2%}** availability "
        f"({spec.policy} routing, {len(spec.seeds)} seed(s), "
        f"{spec.sim_s:g}s horizon; single-host knee "
        f"{plan.knee:,.0f} img/s).",
        "",
        "## Per-K evaluation",
        "",
        "| K | goodput/s | shed % | worst client p99 ms | "
        "SLOs met | alerts | $/M images | verdict |",
        "|---|-----------|--------|---------------------|"
        "----------|--------|------------|---------|",
    ]
    for k in sorted(plan.evaluated):
        ev = plan.evaluated[k]
        slos_met = sum(1 for row in ev["seeds"]
                       for obj in row["slo"] if obj["met"])
        slos_all = sum(len(row["slo"]) for row in ev["seeds"])
        alerts = sum(obj["alerts"] for row in ev["seeds"]
                     for obj in row["slo"])
        lines.append(
            f"| {k} | {_fmt(ev['mean_goodput_per_s'], '{:,.0f}')} "
            f"| {_fmt(ev['seeds'][0]['shed_pct'])} "
            f"| {_fmt(ev['worst_client_p99_ms'])} "
            f"| {slos_met}/{slos_all} | {alerts} "
            f"| {_fmt(ev['mean_cost_per_million_images'], '{:.2f}')} "
            f"| {'PASS' if ev['feasible'] else 'fail'} |")
    lines.append("")
    if plan.recommended_k is not None:
        rec = plan.evaluated[plan.recommended_k]
        lines += [
            "## Recommendation",
            "",
            f"**K = {plan.recommended_k}** hosts "
            f"(headroom {plan.headroom:.2f}x: fleet knee "
            f"{plan.recommended_k * plan.knee:,.0f} img/s vs "
            f"{spec.rate:,.0f} offered); worst client p99 "
            f"{_fmt(rec['worst_client_p99_ms'])} ms, mean cost "
            f"{_fmt(rec['mean_cost_per_million_images'], '{:.2f}')} "
            "$/M images.",
            "",
            "## Alert timeline (recommended K)",
            "",
        ]
        timeline = [entry for row in rec["seeds"]
                    for entry in row["alert_log"]]
        if timeline:
            lines.append("| t (s) | SLO | rule | event | "
                         "burn fast | burn slow |")
            lines.append("|-------|-----|------|-------|"
                         "-----------|-----------|")
            for t, slo, rule, kind, fast, slow in timeline:
                lines.append(f"| {t:.3f} | {slo} | {rule} | {kind} "
                             f"| {fast:.1f} | {slow:.1f} |")
        else:
            lines.append("No burn-rate alerts fired at the "
                         "recommended size.")
    else:
        lines += [
            "## Recommendation",
            "",
            f"**Infeasible**: no K in [{spec.k_min}, {spec.k_max}] "
            "meets the objectives — raise k_max, relax the SLOs, or "
            "shed the excess.",
        ]
    lines.append("")
    return "\n".join(lines)
