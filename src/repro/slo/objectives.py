"""Declarative SLO definitions with error budgets.

An SLO here is the production-team contract the raw telemetry lacks: a
named objective ("99% of requests complete within the deadline") with a
*target* fraction of good events and, implicitly, an **error budget** —
the ``1 - target`` fraction of events that are allowed to be bad before
the objective is violated.  Three kinds cover the serving stack:

* ``availability`` — a request is good iff it completed (not failed,
  shed, expired or rejected);
* ``latency`` — a request is good iff it completed *and* finished
  within ``threshold_s`` (a latency SLO is a success-within-threshold
  availability SLO, per the SRE workbook — never a percentile compare);
* ``integrity`` — an item is good iff it passed end-to-end checksum
  verification (bad events are integrity rejects).

Definitions are pure data; classification of one request outcome is the
only behaviour.  Windowed evaluation and burn-rate alerting live in
:mod:`repro.slo.burnrate`; one-shot verdicts over finished-run counts
are :func:`verdict` below.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["SLODefinition", "verdict", "default_serving_slos",
           "AVAILABILITY", "LATENCY", "INTEGRITY", "KINDS"]

AVAILABILITY = "availability"
LATENCY = "latency"
INTEGRITY = "integrity"
KINDS = (AVAILABILITY, LATENCY, INTEGRITY)


@dataclass(frozen=True)
class SLODefinition:
    """One service-level objective.

    ``target`` is the required fraction of good events in (0, 1) —
    e.g. 0.99 for "99% of requests".  ``threshold_s`` is required by
    (and only by) the ``latency`` kind.
    """

    name: str
    kind: str
    target: float
    threshold_s: Optional[float] = None
    description: str = ""

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown SLO kind {self.kind!r}; "
                             f"choose from {KINDS}")
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {self.target}")
        if self.kind == LATENCY:
            if self.threshold_s is None or self.threshold_s <= 0:
                raise ValueError("latency SLOs need threshold_s > 0")
        elif self.threshold_s is not None:
            raise ValueError(f"threshold_s only applies to latency SLOs, "
                             f"not {self.kind!r}")

    @property
    def error_budget(self) -> float:
        """The allowed bad fraction: 1 - target."""
        return 1.0 - self.target

    def classify(self, ok: bool, latency_s: Optional[float] = None) -> bool:
        """True when one request outcome counts as *good* under this
        objective.  ``ok`` means the request completed; ``latency_s`` is
        its end-to-end latency (``None`` for failures)."""
        if self.kind == LATENCY:
            return bool(ok) and latency_s is not None \
                and latency_s <= self.threshold_s
        # availability and integrity classify on success alone; what
        # feeds the bad count differs only in the wiring (integrity bad
        # events are checksum rejects, not generic failures).
        return bool(ok)

    def to_doc(self) -> dict:
        """JSON-safe description (embedded in repro-slo/1 payloads)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "target": self.target,
            "threshold_ms": (self.threshold_s * 1e3
                             if self.threshold_s is not None else None),
            "error_budget": self.error_budget,
            "description": self.description,
        }


def verdict(slo: SLODefinition, good: int, bad: int) -> dict:
    """One-shot end-of-run verdict over cumulative good/bad counts.

    ``budget_consumed`` is the fraction of the run's error budget the
    bad events burned: 1.0 means exactly at target, above 1.0 the SLO
    is violated.  An empty window vacuously meets its objective.
    """
    total = good + bad
    bad_frac = bad / total if total else 0.0
    budget = slo.error_budget
    consumed = bad_frac / budget if total else 0.0
    return {
        "name": slo.name,
        "kind": slo.kind,
        "target": slo.target,
        "good": int(good),
        "bad": int(bad),
        "total": int(total),
        "bad_frac": bad_frac,
        "budget_consumed": consumed,
        "met": bad_frac <= budget,
    }


def default_serving_slos(deadline_s: float,
                         availability: float = 0.99,
                         latency_target: float = 0.99) -> list[SLODefinition]:
    """The serving pair every fleet experiment and the capacity planner
    evaluate: request availability plus completion-within-deadline."""
    return [
        SLODefinition(
            name="availability", kind=AVAILABILITY, target=availability,
            description="request completed (not failed/shed/expired)"),
        SLODefinition(
            name=f"latency-{deadline_s * 1e3:g}ms", kind=LATENCY,
            target=latency_target, threshold_s=deadline_s,
            description=f"completed within {deadline_s * 1e3:g} ms"),
    ]
