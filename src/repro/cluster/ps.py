"""Parameter-server data parallelism with co-located aggregation.

The paper's first reason for offloading (S3.1): "The CPU-based backend
can scale poorly when consuming too many CPU cores that are supposed to
process other workloads (e.g., parameter aggregation of parameter
server (PS))."  This module quantifies that sentence: in the classic
sharded-PS deployment each server co-hosts 1/N of the parameters, and
every iteration its *CPU cores* aggregate that shard — on the same core
pool the preprocessing backend is burning.

A :class:`PsWorker` runs compute -> push (network) -> shard aggregation
(CPU) -> pull (network); when decode workers hold the cores, aggregation
queues behind them and the whole ring stalls — unless preprocessing has
been offloaded.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Optional

from ..calib import GpuModelSpec, Testbed
from ..engines import CpuCorePool, GpuDevice, train_iteration_seconds
from ..sim import (Counter, Environment, Event, LatencyRecorder,
                   scoped_name)

__all__ = ["PsShardConfig", "PsGroup", "PsWorker"]

# Aggregation rate of one CPU core applying gradient updates
# (sum + SGD step over fp32), bytes/s.  ~2 GB/s is a typical memcpy+FMA
# bound for unvectorized PS servers.
PS_AGG_RATE_PER_CORE = 2.0e9


@dataclass(frozen=True)
class PsShardConfig:
    """Sharding of one model over N co-located parameter servers."""

    world: int
    param_bytes: int
    agg_ways: int = 2  # aggregation threads per shard

    @property
    def shard_bytes(self) -> int:
        return -(-self.param_bytes // self.world)


class PsGroup:
    """Synchronization fabric: every iteration, all workers exchange
    gradients with every shard and wait for aggregation to finish."""

    def __init__(self, env: Environment, config: PsShardConfig,
                 link_rate: float, namespace: str = ""):
        self.env = env
        self.config = config
        self.link_rate = link_rate
        self.namespace = namespace
        self._arrived = 0
        self._release: Event = env.event()
        self.rounds = Counter(env, name=scoped_name(namespace, "ps.rounds"))
        # Round-completion instruments (fleet-style: pure observers, no
        # events or processes, so simulated results are unchanged).
        # ``round_times`` lets callers measure over an integer number of
        # rounds instead of a fixed wall window — a window that opens or
        # closes mid-round miscounts by ±1, a huge relative error over
        # short studies.  Growth is one float per round.
        self.round_gap = LatencyRecorder(
            name=scoped_name(namespace, "ps.round_gap"))
        self.round_times: list[float] = []
        self._last_round: Optional[float] = None
        self.workers: list["PsWorker"] = []

    def register(self, worker: "PsWorker") -> None:
        self.workers.append(worker)

    def exchange(self):
        """Generator: one worker's push+aggregate+pull barrier."""
        cfg = self.config
        self._arrived += 1
        release = self._release
        if self._arrived == cfg.world:
            self._arrived = 0
            self._release = self.env.event()
            self.env.process(self._serve_round(release))
        yield release

    def _serve_round(self, release: Event):
        cfg = self.config
        # Push: each worker sends (world-1)/world of its gradient off-node.
        wire_bytes = cfg.param_bytes * (cfg.world - 1) / cfg.world
        yield self.env.timeout(wire_bytes / self.link_rate)
        # Aggregate: every server's CPU applies world gradients to its
        # shard — this is the part that queues behind decode workers.
        agg_jobs = []
        for worker in self.workers:
            seconds = (cfg.shard_bytes * cfg.world / PS_AGG_RATE_PER_CORE
                       / cfg.agg_ways)
            for _ in range(cfg.agg_ways):
                agg_jobs.append(self.env.process(
                    worker.cpu.run(seconds, "ps-aggregate")))
        yield self.env.all_of(agg_jobs)
        # Pull: updated shards broadcast back.
        yield self.env.timeout(wire_bytes / self.link_rate)
        self.rounds.add()
        now = self.env.now
        self.round_times.append(now)
        if self._last_round is not None:
            self.round_gap.record(now - self._last_round)
        self._last_round = now
        release.succeed()


class PsWorker:
    """One server of the PS ring: a GPU plus its (shared!) core pool."""

    def __init__(self, env: Environment, testbed: Testbed,
                 spec: GpuModelSpec, group: PsGroup, cpu: CpuCorePool,
                 index: int, namespace: str = ""):
        self.env = env
        self.testbed = testbed
        self.spec = spec
        self.group = group
        self.cpu = cpu
        self.index = index
        self.gpu = GpuDevice(env, testbed, index,
                             name=scoped_name(namespace, f"gpu{index}")
                             if namespace else None)
        self.images_trained = Counter(
            env, name=scoped_name(namespace, f"psw{index}.images"))
        self.iterations = Counter(
            env, name=scoped_name(namespace, f"psw{index}.iters"))
        # Per-iteration turnaround (batch wait + compute + ring sync) —
        # the training analogue of Host.turnaround, and what a sweep's
        # merged-reservoir rollup reads from a PS point.
        self.iteration_latency = LatencyRecorder(
            name=scoped_name(namespace, f"psw{index}.iter_latency"))
        group.register(self)
        self._started = False

    def start(self, batch_source) -> None:
        """``batch_source`` is a generator function yielding a ready
        batch size per call (the preprocessing backend's contract)."""
        if self._started:
            raise RuntimeError("worker already started")
        self._started = True
        self.env.process(self._loop(batch_source),
                         name=f"ps-worker-{self.index}")

    def _loop(self, batch_source):
        """Double-buffered: the next batch preprocesses while the GPU
        computes and the ring synchronizes, so any backend slowdown here
        is pure *core contention* with PS aggregation, not serialization.
        """
        tb = self.testbed
        pending = self.env.process(batch_source())
        while True:
            iter_start = self.env.now
            n = yield pending
            pending = self.env.process(batch_source())  # prefetch
            compute_s = train_iteration_seconds(self.spec, n)
            self.cpu.charge_unaccounted(
                compute_s * tb.kernel_launch_core_frac, "kernels")
            yield self.gpu.run_compute(compute_s, "train")
            yield from self.group.exchange()
            self.images_trained.add(n)
            self.iterations.add()
            self.iteration_latency.record(self.env.now - iter_start)
