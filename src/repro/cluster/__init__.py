"""Distributed data parallelism with co-located parameter servers —
the quantified version of S3.1's 'CPU cores are supposed to process
other workloads (e.g., parameter aggregation of parameter server)'."""

from .ps import PsGroup, PsShardConfig, PsWorker
from .study import PsStudyConfig, PsStudyResult, run_ps_study

__all__ = ["PsShardConfig", "PsGroup", "PsWorker", "PsStudyConfig",
           "PsStudyResult", "run_ps_study"]
