"""The PS-contention study: does offloading preprocessing speed up
co-located parameter aggregation?

Each simulated server trains AlexNet-style with a sharded PS ring.  The
preprocessing backend either burns the server's cores (CPU-online) or
barely touches them (DLBooster-style offload).  Because the PS shard is
aggregated *on the same cores*, the decode load directly stretches the
synchronization phase — the quantified version of S3.1's first bullet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..calib import DEFAULT_TESTBED, TRAIN_MODELS, Testbed
from ..engines import CpuCorePool
from ..sim import Environment, scoped_name
from ..telemetry.registry import MetricsRegistry
from .ps import PsGroup, PsShardConfig, PsWorker

__all__ = ["PsStudyConfig", "PsStudyResult", "run_ps_study"]


@dataclass(frozen=True)
class PsStudyConfig:
    model: str = "alexnet"
    world: int = 4                 # servers, one GPU each
    backend: str = "dlbooster"     # "dlbooster" | "cpu-online"
    measure_s: float = 5.0
    warmup_s: float = 1.0
    link_rate: float = 40e9 / 8    # the 40 Gbps fabric (S5.1)


@dataclass
class PsStudyResult:
    config: PsStudyConfig
    throughput: float              # aggregate images/s
    iteration_s: float
    cpu_cores_per_server: float
    agg_cores_per_server: float = 0.0
    extras: dict = field(default_factory=dict)
    # The study's MetricsRegistry (fleet-style accounting: every
    # per-server instrument under a ``server{i}.`` namespace).  Holds
    # live instruments — excluded from repr/compare; callers wanting a
    # plain document should snapshot it, not copy it.
    registry: Optional[MetricsRegistry] = field(
        default=None, repr=False, compare=False)


def _batch_source_factory(env, testbed: Testbed, cpu: CpuCorePool,
                          backend: str, batch_size: int, spec):
    """A per-server preprocessing feed at backend-appropriate CPU cost."""
    image_bytes = 110_000
    work_pixels = int(375 * 500 * 1.5)
    per_image_cpu = testbed.cpu_decode_seconds(image_bytes, work_pixels)
    decode_ways = min(testbed.cpu_cores,
                      max(1, round(spec.train_rate * per_image_cpu) + 2))

    if backend == "cpu-online":
        def source():
            # Decode the batch on host cores (fanned over `ways` jobs).
            chunk = batch_size * per_image_cpu / decode_ways
            jobs = [env.process(cpu.run(chunk, "preprocess"))
                    for _ in range(decode_ways)]
            yield env.all_of(jobs)
            return batch_size
        return source

    if backend == "dlbooster":
        def source():
            # The FPGA decodes; the host only submits cmds.
            cpu.charge_unaccounted(
                batch_size * testbed.reader_cmd_cost_s, "preprocess")
            yield env.timeout(0)
            return batch_size
        return source

    raise ValueError(f"unknown backend {backend!r}")


def run_ps_study(cfg: PsStudyConfig,
                 testbed: Testbed = DEFAULT_TESTBED) -> PsStudyResult:
    """Run the contention study for one backend/world configuration.

    Throughput and iteration time are measured **between round
    completions** inside the window, not by counting events over the
    raw ``[warmup, warmup+measure]`` wall window.  A fixed window that
    opens or closes mid-round miscounts by ±1 round — on a short study
    that is a several-percent error whose sign depends only on each
    backend's startup phase (the CPU backend's first, unhidden decode
    shifts every later round), large enough to invert the very
    comparison the study exists to make.
    """
    spec = TRAIN_MODELS[cfg.model]
    if cfg.world < 2:
        raise ValueError("a PS ring needs world >= 2")
    env = Environment()
    registry = MetricsRegistry(name="ps-study")
    shard = PsShardConfig(world=cfg.world, param_bytes=spec.param_bytes)

    workers = []
    pools = []
    with registry.installed():
        group = PsGroup(env, shard, link_rate=cfg.link_rate)
        for idx in range(cfg.world):
            ns = f"server{idx}"
            cpu = CpuCorePool(env, testbed.cpu_cores,
                              name=scoped_name(ns, "cpu"))
            pools.append(cpu)
            worker = PsWorker(env, testbed, spec, group, cpu, idx,
                              namespace=ns)
            source = _batch_source_factory(env, testbed, cpu, cfg.backend,
                                           spec.batch_size, spec)
            worker.start(source)
            workers.append(worker)

    env.run(until=cfg.warmup_s)
    start_images = sum(w.images_trained.total for w in workers)
    start_iters = workers[0].iterations.total
    agg_mark = [p.tracker.busy_seconds("ps-aggregate") for p in pools]
    busy_mark = [p.tracker.busy_seconds(None) for p in pools]
    env.run(until=cfg.warmup_s + cfg.measure_s)

    delta_images = sum(w.images_trained.total for w in workers) \
        - start_images
    delta_iters = workers[0].iterations.total - start_iters
    agg_cores = sum(
        p.tracker.busy_seconds("ps-aggregate") - m
        for p, m in zip(pools, agg_mark)) / cfg.measure_s / cfg.world
    total_cores = sum(
        p.tracker.busy_seconds(None) - m
        for p, m in zip(pools, busy_mark)) / cfg.measure_s / cfg.world

    # Phase-immune rates: span an integer number of rounds.  One BSP
    # round trains exactly one batch per server.
    window = [t for t in group.round_times
              if cfg.warmup_s < t <= cfg.warmup_s + cfg.measure_s]
    if len(window) >= 2:
        span = window[-1] - window[0]
        rounds_spanned = len(window) - 1
        iteration_s = span / rounds_spanned
        throughput = (cfg.world * spec.batch_size * rounds_spanned
                      / span)
    else:
        # Degenerate window (<2 completions): fall back to the coarse
        # window counts rather than inventing a rate from one point.
        iteration_s = (cfg.measure_s / delta_iters if delta_iters
                       else float("inf"))
        throughput = delta_images / cfg.measure_s

    per_server = [{
        "server": f"server{idx}",
        "images": w.images_trained.total,
        "iterations": w.iterations.total,
        "iter_p50_s": (w.iteration_latency.p50()
                       if w.iteration_latency.count else None),
        "cores_busy": p.tracker.cores(None),
        "breakdown": p.breakdown(),
    } for idx, (w, p) in enumerate(zip(workers, pools))]
    iters = [w.iterations.total for w in workers]

    return PsStudyResult(
        config=cfg,
        throughput=throughput,
        iteration_s=iteration_s,
        cpu_cores_per_server=total_cores,
        agg_cores_per_server=agg_cores,
        extras={"rounds": group.rounds.total,
                "rounds_measured": max(len(window) - 1, 0),
                "per_server": per_server,
                # BSP invariant: no worker ever runs ahead of the ring.
                "lockstep_ok": max(iters) - min(iters) <= 1},
        registry=registry)
