"""repro — a full reproduction of DLBooster (ICPP 2019).

DLBooster offloads the hot stages of DL data preprocessing (JPEG Huffman
decode, iDCT, resize) to an FPGA decoder and bridges it to GPU compute
engines through an asynchronous reader, a hugepage memory pool and a
round-robin dispatcher.  This package rebuilds the whole system — the
software layer for real, the hardware as behavioural simulation — plus
the paper's baselines (CPU-online, LMDB-offline, nvJPEG) and every
evaluation figure.

Start with :mod:`repro.workflows` for end-to-end drivers, or
``examples/quickstart.py`` at the repository root.
"""

__version__ = "1.0.0"

__all__ = ["sim", "jpeg", "memory", "storage", "net", "fpga", "host",
           "engines", "backends", "workflows", "experiments", "calib",
           "data", "faults", "supervision", "telemetry", "tracing"]
