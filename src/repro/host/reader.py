"""FPGAReader — the asynchronous decode driver (paper Algorithm 1).

The reader walks WorkItems from the DataCollector, packs them
``batch_size`` at a time into hugepage memory units, encapsulates each
item's metadata plus the unit's *physical* address (+ in-batch offset)
into a cmd, and aggressively submits cmds to the FPGA FIFO queue while
pulling completion status with best effort.  When every slot of a batch
has its FINISH record, the unit is pushed to the Full_Batch_Queue for
the Dispatcher.

Resilience (beyond the paper's fault-free prototype): every in-flight
cmd lives in a retransmit table with a deadline derived from the cmd's
own decode-work estimate.  A missed deadline means the cmd was lost
(dropped on the wire, or the decoder died) — with a
:class:`~repro.faults.RetryPolicy` armed the cmd is resubmitted under
exponential backoff, then failed over to the CPU decode pool or
quarantined; without one the deadline still exists and a stalled mirror
surfaces as a ``RuntimeError`` instead of a silent hang.  Error FINISH
records (poison JPEGs, device read failures) retry the same way and end
in the :class:`~repro.faults.QuarantineLog`, keeping the conservation
invariant ``accepted == decoded + failover + quarantined``.  An
optional :class:`~repro.faults.CircuitBreaker` re-routes whole batches
to the CPU pool while the FPGA path is down and re-admits it via
probes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..calib import Testbed
from ..engines.cpu import CpuCorePool
from ..faults import CircuitBreaker, QuarantineLog, RetryPolicy
from ..fpga import DecodeCmd, FPGAChannel
from ..memory import MemManager, MemoryUnit
from ..sim import Counter, Environment, LatencyRecorder, deadline_of
from ..supervision import expire_request
from .collector import WorkItem

__all__ = ["BatchSpec", "FPGAReader"]

# Deadline shape used when no RetryPolicy is armed: same safety margin,
# but zero retries — a missed deadline is an error, not a recovery.
_DEFAULT_POLICY = RetryPolicy()


@dataclass(frozen=True)
class BatchSpec:
    """Geometry of the batches handed to the compute engine."""

    batch_size: int
    out_h: int
    out_w: int
    channels: int

    @property
    def item_bytes(self) -> int:
        return self.out_h * self.out_w * self.channels

    @property
    def batch_bytes(self) -> int:
        return self.item_bytes * self.batch_size


@dataclass
class _OpenBatch:
    unit: MemoryUnit
    tag: int
    opened_at: float = 0.0   # when the first slot was claimed (fan-in span)
    filled: int = 0          # slots assigned (cmds created)
    done: int = 0            # slots resolved: decoded, failover or quarantined
    quarantined: int = 0
    closed: bool = False     # no more cmds will join
    items: list = field(default_factory=list)
    bad_slots: set = field(default_factory=set)


@dataclass
class _PendingCmd:
    """One retransmit-table entry: an in-flight cmd awaiting FINISH."""

    cmd: DecodeCmd
    batch: _OpenBatch
    slot: int
    item: WorkItem
    attempts: int = 0                    # completed (failed) attempts
    deadline_at: float = float("inf")
    submitted_at: float = 0.0            # first submission (survives retries)


class FPGAReader:
    """Algorithm 1, split into a submission loop and a completion pump.

    The pump realises the "pulls the processing status with the best
    effort" half of the async design: completions are absorbed the
    moment the FINISH arbiter raises them, independent of submission
    progress, so a slow consumer never stalls the FPGA FIFO.
    """

    def __init__(self, env: Environment, testbed: Testbed,
                 channel: FPGAChannel, pool: MemManager, spec: BatchSpec,
                 cpu: Optional[CpuCorePool] = None,
                 channels: Optional[list[FPGAChannel]] = None,
                 name: str = "fpga-reader",
                 injector=None,
                 retry: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 quarantine: Optional[QuarantineLog] = None,
                 tracer=None,
                 heartbeat=None,
                 integrity=None,
                 shed_deadlines: bool = False,
                 rtracker=None):
        self.env = env
        self.testbed = testbed
        # Multiple decoders may be attached ("plugging more FPGA
        # devices", S5.3); cmds round-robin across their channels.
        self.channels = channels if channels else [channel]
        self.pool = pool
        self.spec = spec
        self.cpu = cpu
        self.name = name
        self.injector = injector
        self.retry = retry
        self.breaker = breaker
        self.quarantine = quarantine if quarantine is not None \
            else QuarantineLog(env, name=f"{name}.quarantine")
        self.tracer = tracer
        self.heartbeat = heartbeat
        self.integrity = integrity
        self.rtracker = rtracker   # repro.tracing.RequestTracker, optional
        self.shed_deadlines = shed_deadlines
        self.batches_produced = Counter(env, name=f"{name}.batches")
        self.items_submitted = Counter(env, name=f"{name}.items")
        self.items_accepted = Counter(env, name=f"{name}.accepted")
        self.items_decoded_fpga = Counter(env, name=f"{name}.fpga_ok")
        self.retries = Counter(env, name=f"{name}.retries")
        self.timeouts = Counter(env, name=f"{name}.timeouts")
        self.duplicate_finishes = Counter(env, name=f"{name}.dup_finish")
        self.failover_items = Counter(env, name=f"{name}.failover")
        self.empty_batches = Counter(env, name=f"{name}.empty_batches")
        self.shed_expired = Counter(env, name=f"{name}.shed_expired")
        self.integrity_rejected = Counter(env, name=f"{name}.integrity_rej")
        # Per-item decode latency, first submission -> slot resolution
        # (FPGA FINISH or CPU failover), retries included.
        self.decode_latency = LatencyRecorder(name=f"{name}.latency")
        self._open: dict[int, _OpenBatch] = {}
        self._pending: dict[int, _PendingCmd] = {}
        self._wake = None        # watchdog's parking event while idle
        self._next_tag = 0
        self._next_cmd = 0
        self._rr = 0
        self.running = True
        for ch in self.channels:
            self.env.process(self._completion_pump(ch),
                             name=f"{name}.pump{ch.queue_id}")
        self.env.process(self._watchdog(), name=f"{name}.watchdog")

    # -- submission side (Algorithm 1 main loop) ---------------------------
    def run_epoch(self, items: Iterable[WorkItem]):
        """Generator: submit every item of one epoch; returns when all
        resulting batches have been pushed to the Full_Batch_Queue."""
        batch: Optional[_OpenBatch] = None
        for item in items:
            self._trace_ingest(item)
            if self._shed_if_expired(item):
                continue
            self._trace_mark(item, "reader.pool", "wait")
            if batch is None:
                if self.heartbeat is not None:
                    self.heartbeat.waiting(self.pool.free_batch_queue.name)
                unit = yield from self.pool.get_item()   # may block: line 5-10
                if self.heartbeat is not None:
                    self.heartbeat.running()
                batch = _OpenBatch(unit=unit, tag=self._next_tag,
                                   opened_at=self.env.now)
                self._next_tag += 1
                self._open[batch.tag] = batch
            yield from self._submit_item(item, batch)     # lines 11-13
            if batch.filled == self.spec.batch_size:
                batch.closed = True
                self._maybe_complete(batch)
                batch = None
        if batch is not None:  # short tail batch at epoch end
            batch.closed = True
            self._maybe_complete(batch)
        # Wait until every open batch of this epoch has drained.
        while self._open:
            yield self.env.timeout(self._poll_interval())

    def run_stream(self, next_item_fn, count: Optional[int] = None):
        """Generator: like :meth:`run_epoch` but pulls items from a
        *blocking* source (the NIC path: ``next_item_fn`` is a generator
        function returning one WorkItem, e.g.
        ``DataCollector.next_from_net``)."""
        batch: Optional[_OpenBatch] = None
        submitted = 0
        while count is None or submitted < count:
            if self.heartbeat is not None:
                self.heartbeat.waiting("collector")
            item = yield from next_item_fn()
            if self.heartbeat is not None:
                self.heartbeat.running()
            self._trace_ingest(item)
            if self._shed_if_expired(item):
                submitted += 1
                continue
            self._trace_mark(item, "reader.pool", "wait")
            if batch is None:
                if self.heartbeat is not None:
                    self.heartbeat.waiting(self.pool.free_batch_queue.name)
                unit = yield from self.pool.get_item()
                if self.heartbeat is not None:
                    self.heartbeat.running()
                batch = _OpenBatch(unit=unit, tag=self._next_tag,
                                   opened_at=self.env.now)
                self._next_tag += 1
                self._open[batch.tag] = batch
            yield from self._submit_item(item, batch)
            submitted += 1
            if batch.filled == self.spec.batch_size:
                batch.closed = True
                self._maybe_complete(batch)
                batch = None
        if batch is not None:
            batch.closed = True
            self._maybe_complete(batch)

    def _shed_if_expired(self, item: WorkItem) -> bool:
        """Admission control at the reader boundary: dead work (deadline
        already passed) is accepted-and-shed instead of decoded.  The
        item's issuer is failed with ``DeadlineExceeded``."""
        if not self.shed_deadlines or deadline_of(item) > self.env.now:
            return False
        self.items_accepted.add()
        self.shed_expired.add()
        expire_request(item, where=f"{self.name}.admission")
        if self.tracer is not None:
            self.tracer.instant("shed:reader", track="supervision")
        if self.heartbeat is not None:
            self.heartbeat.progress()
        return True

    # -- trace plumbing ----------------------------------------------------
    def _trace_ingest(self, item: WorkItem) -> None:
        """Mint a trace for sources that bypass the NIC (the training
        feed's epoch stream); net items arrive already traced."""
        if self.rtracker is not None and getattr(item, "trace", None) is None:
            item.trace = self.rtracker.start(
                "reader.ingest", kind="service",
                baggage={"source": item.source})

    @staticmethod
    def _trace_mark(item: WorkItem, stage: str, kind: str) -> None:
        trace = getattr(item, "trace", None)
        if trace is not None and not trace.is_finished:
            trace.mark(stage, kind)

    def _submit_item(self, item: WorkItem, batch: _OpenBatch):
        """Generator: route one item — FPGA cmd, or CPU pool while the
        circuit breaker holds the FPGA path open."""
        slot = batch.filled
        batch.filled += 1
        batch.items.append(item)
        self.items_accepted.add()
        self._trace_mark(item, "reader.submit", "service")
        # Ingest-stamp backstop: sources that bypass the DataCollector
        # (e.g. the training feed's epoch stream) get stamped here,
        # before any fault can touch the cmd's travelling copy.
        if self.integrity is not None and item.checksum is None:
            self.integrity.stamp(item)
        if self.cpu is not None:
            self.cpu.charge_unaccounted(
                self.testbed.reader_cmd_cost_s, "preprocess")
        cmd = self._cmd_generator(item, batch, slot)
        if self.breaker is not None and self.breaker.is_open \
                and self.cpu is not None and not self.breaker.take_probe():
            pend = _PendingCmd(cmd=cmd, batch=batch, slot=slot, item=item,
                               submitted_at=self.env.now)
            self.env.process(self._cpu_fallback(pend),
                             name=f"{self.name}.failover{cmd.cmd_id}")
            return
        if self.injector is not None:
            self.injector.maybe_poison_cmd(cmd, site=self.name)
            self.injector.maybe_bitflip_cmd(cmd, site=self.name)
        ch = self.channels[self._rr % len(self.channels)]
        self._rr += 1
        yield from ch.submit_cmd(cmd)                     # line 13
        self.items_submitted.add()
        policy = self.retry if self.retry is not None else _DEFAULT_POLICY
        self._register(_PendingCmd(
            cmd=cmd, batch=batch, slot=slot, item=item, attempts=0,
            deadline_at=self.env.now + policy.deadline_for(
                self._deadline_estimate(cmd), 0),
            submitted_at=self.env.now))

    def _cmd_generator(self, item: WorkItem, batch: _OpenBatch,
                       slot: int) -> DecodeCmd:
        """The paper's ``cmd_generator(f_metainfo, phyaddr + offset)``."""
        offset = slot * self.spec.item_bytes
        trace = getattr(item, "trace", None)
        cmd = DecodeCmd(
            cmd_id=self._next_cmd, source=item.source,
            size_bytes=item.size_bytes, work_pixels=item.work_pixels,
            out_h=self.spec.out_h, out_w=self.spec.out_w,
            channels=self.spec.channels,
            dest_phy=batch.unit.phy_addr, dest_offset=offset,
            batch_tag=batch.tag, payload=item.payload,
            trace=trace,
            trace_attempt=trace.attempt if trace is not None else 0)
        self._next_cmd += 1
        return cmd

    def _poll_interval(self) -> float:
        return max(self.testbed.fpga_cmd_overhead_s * 4, 1e-6)

    # -- retransmit table --------------------------------------------------
    def _deadline_estimate(self, cmd: DecodeCmd) -> float:
        """Healthy-pipeline upper-bound latency for one cmd.

        A freshly enqueued cmd can sit behind a full FIFO (``depth``
        cmds) each paying the slowest single-way stage, plus its own
        trip through every stage.  Real waits are far shorter (stages
        are multi-way and pipelined), so deadline = estimate x safety
        only fires when a cmd is genuinely lost.
        """
        tb = self.testbed
        stages = (
            tb.fpga_cmd_overhead_s,
            cmd.size_bytes / tb.fpga_huffman_byte_rate,
            cmd.work_pixels / tb.fpga_idct_pixel_rate,
            (cmd.out_h * cmd.out_w) / tb.fpga_resizer_pixel_rate,
            cmd.out_bytes / tb.fpga_dma_rate,
            tb.nvme_access_latency_s + cmd.size_bytes / tb.nvme_read_rate,
        )
        return tb.fpga_queue_depth * max(stages) + sum(stages)

    def _register(self, pend: _PendingCmd) -> None:
        self._pending[pend.cmd.cmd_id] = pend
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()
            self._wake = None

    def _watchdog(self):
        """Deadline enforcement for the retransmit table.

        Parks on a plain (unscheduled) event while the table is empty so
        an idle reader leaves the event queue untouched; while cmds are
        in flight it sleeps to the nearest deadline and expires overdue
        entries.
        """
        while self.running:
            if not self._pending:
                self._wake = self.env.event()
                yield self._wake
                continue
            now = self.env.now
            horizon = min(p.deadline_at for p in self._pending.values())
            if horizon > now:
                yield self.env.timeout(horizon - now)
                continue
            overdue = [p for p in self._pending.values()
                       if p.deadline_at <= now]
            for pend in overdue:
                del self._pending[pend.cmd.cmd_id]
                self._expire(pend)

    def _expire(self, pend: _PendingCmd) -> None:
        """A cmd missed its deadline: it was dropped, or the mirror died."""
        self.timeouts.add()
        if self.tracer is not None:
            self.tracer.instant(f"cmd-timeout:{pend.cmd.cmd_id}",
                                track="faults")
        if self.breaker is not None:
            self.breaker.record_failure()
        if self.retry is None:
            raise RuntimeError(
                f"{self.name}: cmd {pend.cmd.cmd_id} missed its deadline at "
                f"t={self.env.now:.6f}s — FPGA mirror stalled or cmd lost "
                f"(arm a RetryPolicy for automatic resubmission)")
        if pend.attempts + 1 < self.retry.max_attempts:
            self.retries.add()
            self.env.process(self._resubmit(pend),
                             name=f"{self.name}.retry{pend.cmd.cmd_id}")
        elif self.cpu is not None:
            self.env.process(self._cpu_fallback(pend),
                             name=f"{self.name}.failover{pend.cmd.cmd_id}")
        else:
            self._quarantine(pend, "deadline-exhausted")

    def _resubmit(self, pend: _PendingCmd):
        """Generator: resubmit a lost/failed cmd under a fresh cmd_id."""
        attempts = pend.attempts + 1
        trace = getattr(pend.item, "trace", None)
        if trace is not None and not trace.is_finished:
            # New attempt epoch: the lost cmd's ghost can no longer mark.
            trace.attempt += 1
            trace.mark("reader.retry", "service")
        cmd = dataclasses.replace(
            pend.cmd, cmd_id=self._next_cmd, error=None,
            trace_attempt=trace.attempt if trace is not None else 0)
        self._next_cmd += 1
        if self.cpu is not None:
            self.cpu.charge_unaccounted(
                self.testbed.reader_cmd_cost_s, "preprocess")
        ch = self.channels[self._rr % len(self.channels)]
        self._rr += 1
        yield from ch.submit_cmd(cmd)
        policy = self.retry if self.retry is not None else _DEFAULT_POLICY
        self._register(_PendingCmd(
            cmd=cmd, batch=pend.batch, slot=pend.slot, item=pend.item,
            attempts=attempts,
            deadline_at=self.env.now + policy.deadline_for(
                self._deadline_estimate(cmd), attempts),
            submitted_at=pend.submitted_at))

    def _cpu_fallback(self, pend: _PendingCmd):
        """Generator: decode one item on the CPU pool instead."""
        item = pend.item
        trace = getattr(item, "trace", None)
        if trace is not None and not trace.is_finished:
            trace.attempt += 1            # orphan any in-flight FPGA cmd
            trace.mark("cpu.decode", "service")
        cost = self.testbed.cpu_decode_seconds(
            item.size_bytes, item.work_pixels)
        yield from self.cpu.run(cost, "preprocess")
        self.failover_items.add()
        self._resolve_ok(pend, via="cpu")

    # -- completion side -----------------------------------------------------
    def _completion_pump(self, ch: FPGAChannel):
        while self.running:
            record = yield from ch.wait_one()
            self._handle_record(record)

    def _handle_record(self, record) -> None:
        pend = self._pending.pop(record.cmd_id, None)
        if pend is None:
            # Late FINISH for a cmd we already retried or failed over —
            # its slot is accounted for, suppress the duplicate.
            self.duplicate_finishes.add()
            return
        if self.breaker is not None:
            # A FINISH of any status is proof the decoder is alive; only
            # silence (timeouts) indicts the device.
            self.breaker.record_success()
        if record.status == "ok":
            self._resolve_ok(pend, via="fpga")
        else:
            self._fail_attempt(pend, record.error or "decode-error")

    def _fail_attempt(self, pend: _PendingCmd, reason: str) -> None:
        if self.retry is not None \
                and pend.attempts + 1 < self.retry.max_attempts:
            self.retries.add()
            self.env.process(self._resubmit(pend),
                             name=f"{self.name}.retry{pend.cmd.cmd_id}")
        else:
            self._quarantine(pend, reason)

    # -- slot resolution ---------------------------------------------------
    def _resolve_ok(self, pend: _PendingCmd, via: str) -> None:
        if via == "fpga":
            if self.integrity is not None and not self.integrity.verify(
                    pend.item, pend.cmd.payload,
                    pend.cmd.size_bytes, pend.cmd.work_pixels):
                # The decoder reported success over bytes that no longer
                # match the ingest stamp: silent corruption.  Quarantine
                # instead of batching garbage pixels.
                self.integrity_rejected.add()
                self._quarantine(pend, "integrity-mismatch")
                return
            self.items_decoded_fpga.add()
        trace = getattr(pend.item, "trace", None)
        self.decode_latency.record(
            max(0.0, self.env.now - pend.submitted_at),
            trace_id=trace.trace_id if trace is not None else None)
        if trace is not None and not trace.is_finished:
            # Decoded; the slot now waits for its batch siblings.
            trace.mark("batch.fanin", "wait")
        batch = pend.batch
        batch.done += 1
        if self.heartbeat is not None:
            self.heartbeat.progress()
        self._maybe_complete(batch)

    def _quarantine(self, pend: _PendingCmd, reason: str) -> None:
        batch = pend.batch
        batch.done += 1
        batch.quarantined += 1
        batch.bad_slots.add(pend.slot)
        self.quarantine.add(pend.item, reason)
        trace = getattr(pend.item, "trace", None)
        if trace is not None and not trace.is_finished:
            trace.abort(f"quarantine:{reason}")
        if self.tracer is not None:
            self.tracer.instant(f"quarantine:{reason}", track="faults")
        if self.heartbeat is not None:
            self.heartbeat.progress()
        self._maybe_complete(batch)

    def _maybe_complete(self, batch: _OpenBatch) -> None:
        if not (batch.closed and batch.done == batch.filled):
            return
        del self._open[batch.tag]
        unit = batch.unit
        good = batch.filled - batch.quarantined
        if good == 0:
            # Every slot was poison: nothing to train on, return the unit.
            self.empty_batches.add()
            self.pool.recycle_item_nowait(unit)
            return
        unit.item_count = good
        unit.payload = batch.items if not batch.quarantined else [
            it for slot, it in enumerate(batch.items)
            if slot not in batch.bad_slots]
        unit.used_bytes = batch.filled * self.spec.item_bytes
        traces = [t for t in (getattr(it, "trace", None)
                              for it in unit.payload)
                  if t is not None and not t.is_finished]
        if self.rtracker is not None and traces:
            # Fan-in point: N request traces converge into one batch.
            self.rtracker.batch_fanin(batch.tag, traces,
                                      start=batch.opened_at,
                                      end=self.env.now)
        for t in traces:
            t.mark("pool.full_queue", "wait")
        if not self.pool.full_batch_queue.try_put(unit):
            raise RuntimeError("Full_Batch_Queue overflow (pool misuse)")
        self.batches_produced.add()

    def recycle(self) -> None:
        """Algorithm 1 lines 18-19: shut down the channel bindings."""
        self.running = False
        if self.heartbeat is not None:
            self.heartbeat.idle()
        for ch in self.channels:
            ch.recycle()
