"""FPGAReader — the asynchronous decode driver (paper Algorithm 1).

The reader walks WorkItems from the DataCollector, packs them
``batch_size`` at a time into hugepage memory units, encapsulates each
item's metadata plus the unit's *physical* address (+ in-batch offset)
into a cmd, and aggressively submits cmds to the FPGA FIFO queue while
pulling completion status with best effort.  When every slot of a batch
has its FINISH record, the unit is pushed to the Full_Batch_Queue for
the Dispatcher.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..calib import Testbed
from ..fpga import DecodeCmd, FPGAChannel
from ..memory import MemManager, MemoryUnit
from ..engines.cpu import CpuCorePool
from ..sim import Counter, Environment
from .collector import WorkItem

__all__ = ["BatchSpec", "FPGAReader"]


@dataclass(frozen=True)
class BatchSpec:
    """Geometry of the batches handed to the compute engine."""

    batch_size: int
    out_h: int
    out_w: int
    channels: int

    @property
    def item_bytes(self) -> int:
        return self.out_h * self.out_w * self.channels

    @property
    def batch_bytes(self) -> int:
        return self.item_bytes * self.batch_size


@dataclass
class _OpenBatch:
    unit: MemoryUnit
    tag: int
    filled: int = 0          # cmds submitted
    finished: int = 0        # FINISH records seen
    closed: bool = False     # no more cmds will join
    items: list = field(default_factory=list)


class FPGAReader:
    """Algorithm 1, split into a submission loop and a completion pump.

    The pump realises the "pulls the processing status with the best
    effort" half of the async design: completions are absorbed the
    moment the FINISH arbiter raises them, independent of submission
    progress, so a slow consumer never stalls the FPGA FIFO.
    """

    def __init__(self, env: Environment, testbed: Testbed,
                 channel: FPGAChannel, pool: MemManager, spec: BatchSpec,
                 cpu: Optional[CpuCorePool] = None,
                 channels: Optional[list[FPGAChannel]] = None,
                 name: str = "fpga-reader"):
        self.env = env
        self.testbed = testbed
        # Multiple decoders may be attached ("plugging more FPGA
        # devices", S5.3); cmds round-robin across their channels.
        self.channels = channels if channels else [channel]
        self.pool = pool
        self.spec = spec
        self.cpu = cpu
        self.name = name
        self.batches_produced = Counter(env, name=f"{name}.batches")
        self.items_submitted = Counter(env, name=f"{name}.items")
        self._open: dict[int, _OpenBatch] = {}
        self._next_tag = 0
        self._next_cmd = 0
        self._rr = 0
        self.running = True
        for ch in self.channels:
            self.env.process(self._completion_pump(ch),
                             name=f"{name}.pump{ch.queue_id}")

    # -- submission side (Algorithm 1 main loop) ---------------------------
    def run_epoch(self, items: Iterable[WorkItem]):
        """Generator: submit every item of one epoch; returns when all
        resulting batches have been pushed to the Full_Batch_Queue."""
        batch: Optional[_OpenBatch] = None
        for item in items:
            if batch is None:
                unit = yield from self.pool.get_item()   # may block: line 5-10
                batch = _OpenBatch(unit=unit, tag=self._next_tag)
                self._next_tag += 1
                self._open[batch.tag] = batch
            cmd = self._cmd_generator(item, batch)        # lines 11-12
            if self.cpu is not None:
                self.cpu.charge_unaccounted(
                    self.testbed.reader_cmd_cost_s, "preprocess")
            ch = self.channels[self._rr % len(self.channels)]
            self._rr += 1
            yield from ch.submit_cmd(cmd)                 # line 13
            self.items_submitted.add()
            batch.filled += 1
            batch.items.append(item)
            if batch.filled == self.spec.batch_size:
                batch.closed = True
                self._maybe_complete(batch)
                batch = None
        if batch is not None:  # short tail batch at epoch end
            batch.closed = True
            self._maybe_complete(batch)
        # Wait until every open batch of this epoch has drained.
        while self._open:
            yield self.env.timeout(self._poll_interval())

    def run_stream(self, next_item_fn, count: Optional[int] = None):
        """Generator: like :meth:`run_epoch` but pulls items from a
        *blocking* source (the NIC path: ``next_item_fn`` is a generator
        function returning one WorkItem, e.g.
        ``DataCollector.next_from_net``)."""
        batch: Optional[_OpenBatch] = None
        submitted = 0
        while count is None or submitted < count:
            item = yield from next_item_fn()
            if batch is None:
                unit = yield from self.pool.get_item()
                batch = _OpenBatch(unit=unit, tag=self._next_tag)
                self._next_tag += 1
                self._open[batch.tag] = batch
            cmd = self._cmd_generator(item, batch)
            if self.cpu is not None:
                self.cpu.charge_unaccounted(
                    self.testbed.reader_cmd_cost_s, "preprocess")
            ch = self.channels[self._rr % len(self.channels)]
            self._rr += 1
            yield from ch.submit_cmd(cmd)
            self.items_submitted.add()
            submitted += 1
            batch.filled += 1
            batch.items.append(item)
            if batch.filled == self.spec.batch_size:
                batch.closed = True
                self._maybe_complete(batch)
                batch = None
        if batch is not None:
            batch.closed = True
            self._maybe_complete(batch)

    def _cmd_generator(self, item: WorkItem, batch: _OpenBatch) -> DecodeCmd:
        """The paper's ``cmd_generator(f_metainfo, phyaddr + offset)``."""
        offset = batch.filled * self.spec.item_bytes
        cmd = DecodeCmd(
            cmd_id=self._next_cmd, source=item.source,
            size_bytes=item.size_bytes, work_pixels=item.work_pixels,
            out_h=self.spec.out_h, out_w=self.spec.out_w,
            channels=self.spec.channels,
            dest_phy=batch.unit.phy_addr, dest_offset=offset,
            batch_tag=batch.tag, payload=item.payload)
        self._next_cmd += 1
        return cmd

    def _poll_interval(self) -> float:
        return max(self.testbed.fpga_cmd_overhead_s * 4, 1e-6)

    # -- completion side -----------------------------------------------------
    def _completion_pump(self, ch: FPGAChannel):
        while self.running:
            record = yield from ch.wait_one()
            batch = self._open.get(record.batch_tag)
            if batch is None:
                raise RuntimeError(
                    f"FINISH for unknown batch {record.batch_tag}")
            batch.finished += 1
            self._maybe_complete(batch)

    def _maybe_complete(self, batch: _OpenBatch) -> None:
        if not (batch.closed and batch.finished == batch.filled):
            return
        del self._open[batch.tag]
        unit = batch.unit
        unit.item_count = batch.filled
        unit.payload = batch.items
        unit.used_bytes = batch.filled * self.spec.item_bytes
        if not self.pool.full_batch_queue.try_put(unit):
            raise RuntimeError("Full_Batch_Queue overflow (pool misuse)")
        self.batches_produced.add()

    def recycle(self) -> None:
        """Algorithm 1 lines 18-19: shut down the channel bindings."""
        self.running = False
        for ch in self.channels:
            ch.recycle()
