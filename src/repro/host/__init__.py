"""Host bridger: FPGAReader (Alg. 1), DataCollector, Dispatcher (Alg. 3)
and the Table-1 API inventory."""

from .api import TABLE1, ApiRow, validate_table1
from .collector import DataCollector, WorkItem
from .dispatcher import Dispatcher
from .reader import BatchSpec, FPGAReader

__all__ = ["DataCollector", "WorkItem", "FPGAReader", "BatchSpec",
           "Dispatcher", "TABLE1", "ApiRow", "validate_table1"]
