"""DataCollector — the data abstraction feeding FPGAReader (S3.4.1).

"A DataCollector is set up as a data abstraction, which translates the
metadata (i.e., block information) that describes the storage
information of the data on the disk or generates the metadata (i.e.,
physical address of memory) that describes where the data are placed by
NICs.  The DataCollector is globally shared by its callers in
generating cmds for FPGA decoders."
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from ..net import NetRequest, Nic
from ..sim import Counter, Environment
from ..storage import FileEntry, FileManifest

__all__ = ["WorkItem", "DataCollector"]


@dataclass
class WorkItem:
    """Source-agnostic description of one sample to preprocess."""

    source: str                  # "disk" | "dram"
    size_bytes: int
    work_pixels: int
    channels: int
    label: int = 0
    payload: Optional[bytes] = None
    request: Optional[NetRequest] = None   # set for net-sourced items
    entry: Optional[FileEntry] = None      # set for disk-sourced items
    # Supervision metadata (see repro.supervision): absolute deadline
    # after which the item is dead work, and the ingest checksum the
    # backend re-verifies after decode.
    deadline_at: float = math.inf
    checksum: Optional[int] = None
    # Causal trace context (repro.tracing.RequestTrace), carried by
    # reference from the originating NetRequest or minted at disk ingest.
    trace: object = None


class DataCollector:
    """Globally-shared translator from disk manifests / NIC queues to
    :class:`WorkItem` streams.

    ``integrity`` (an :class:`~repro.supervision.IntegrityChecker`)
    stamps every produced item with its ingest checksum.  ``deadline_s``
    gives net-sourced items an absolute deadline of ``received_at +
    deadline_s`` when the request does not already carry one — the entry
    point of deadline propagation.  Both default to off and add nothing
    to an unsupervised pipeline.
    """

    def __init__(self, env: Environment, name: str = "collector",
                 integrity=None, deadline_s: Optional[float] = None):
        self.env = env
        self.name = name
        self.integrity = integrity
        self.deadline_s = deadline_s
        self.heartbeat = None
        self._manifest: Optional[FileManifest] = None
        self._nic: Optional[Nic] = None
        self.items_from_disk = Counter(env, name=f"{name}.disk")
        self.items_from_net = Counter(env, name=f"{name}.net")

    # -- Table 1 API -------------------------------------------------------
    def load_from_disk(self, manifest: FileManifest) -> None:
        """Obtain the metadata (blocks description) of files from disk."""
        self._manifest = manifest

    def load_from_net(self, nic: Nic) -> None:
        """Fetch data from networking; NIC DMA placement supplies the
        physical addresses."""
        self._nic = nic

    # -- streaming ------------------------------------------------------
    def disk_epoch(self, rng: Optional[np.random.Generator] = None
                   ) -> Iterator[WorkItem]:
        """One pass over the manifest (optionally shuffled) — the
        ``foreach file in data_collector`` of Algorithm 1."""
        if self._manifest is None:
            raise RuntimeError("load_from_disk() has not been called")
        for idx in self._manifest.epoch_order(rng):
            entry = self._manifest[int(idx)]
            self.items_from_disk.add()
            item = WorkItem(
                source="disk", size_bytes=entry.size_bytes,
                work_pixels=entry.decode_work_pixels,
                channels=entry.channels, label=entry.label,
                payload=entry.payload, entry=entry)
            if self.integrity is not None:
                self.integrity.stamp(item)
            if self.heartbeat is not None:
                self.heartbeat.progress()
            yield item

    def next_from_net(self):
        """Generator: block for the next NIC-delivered image."""
        if self._nic is None:
            raise RuntimeError("load_from_net() has not been called")
        request: NetRequest = yield from self._nic.rx_queue.get()
        self.items_from_net.add()
        deadline_at = getattr(request, "deadline_at", math.inf)
        if deadline_at == math.inf and self.deadline_s is not None:
            deadline_at = request.received_at + self.deadline_s
        item = WorkItem(
            source="dram", size_bytes=request.size_bytes,
            work_pixels=request.decode_work_pixels,
            channels=request.channels, payload=request.payload,
            request=request, deadline_at=deadline_at,
            trace=getattr(request, "trace", None))
        if item.trace is not None:
            # RX wait is over; metadata translation is collector service.
            item.trace.mark("collector", "service")
        if self.integrity is not None:
            self.integrity.stamp(item)
        if self.heartbeat is not None:
            self.heartbeat.progress()
        return item
