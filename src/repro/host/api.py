"""Table 1 of the paper, as a machine-checkable API inventory.

Each row of the paper's "DLBooster API and module design" table maps to
a concrete attribute of our implementation; the test suite asserts the
surface exists with the documented owners, so drift between paper and
code is caught mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..fpga import FPGAChannel
from ..memory import MemManager
from .collector import DataCollector

__all__ = ["ApiRow", "TABLE1", "validate_table1"]


@dataclass(frozen=True)
class ApiRow:
    owner: str
    api: str
    arguments: str
    description: str


TABLE1: tuple[ApiRow, ...] = (
    ApiRow("FPGAChannel", "submit_cmd", "packeted cmds",
           "Submit cmd to FPGA decoder and launch decoding operation"),
    ApiRow("FPGAChannel", "drain_out", "None",
           "Query the FPGA decoder processing signal asynchronously"),
    ApiRow("MemManager", "get_item", "buffer_size",
           "Retrieve memory from memory pool with specified size"),
    ApiRow("MemManager", "recycle_item", "None",
           "Return memory buffer to memory pool for the next use"),
    ApiRow("MemManager", "phy2virt", "physical address",
           "Convert physical memory address to virtual memory address"),
    ApiRow("MemManager", "virt2phy", "virtual address",
           "Convert virtual memory address to physical memory address"),
    ApiRow("DataCollector", "load_from_disk", "None",
           "Obtain the metadata (blocks description) of files from disk"),
    ApiRow("DataCollector", "load_from_net", "None",
           "Fetch data from networking and store to the specified address"),
)

_OWNERS = {
    "FPGAChannel": FPGAChannel,
    "MemManager": MemManager,
    "DataCollector": DataCollector,
}


def validate_table1() -> list[str]:
    """Return a list of missing APIs (empty == fully implemented)."""
    missing = []
    for row in TABLE1:
        cls = _OWNERS.get(row.owner)
        if cls is None:
            missing.append(f"{row.owner} (class missing)")
        elif not callable(getattr(cls, row.api, None)):
            missing.append(f"{row.owner}.{row.api}")
    return missing
