"""Dispatcher — round-robin batch pump to the GPUs (paper Algorithm 3).

Phase 1: for every registered solver, take one full host batch and one
free device buffer, and launch an asynchronous copy on that solver's
stream.  Phase 2: synchronize every stream, hand the device buffers to
the solvers' FULL Trans Queues and recycle the host units.  The
async-submit/late-sync split is what lets one dispatcher thread feed
multiple GPUs at "reduced CPU cost" (S3.4.3).

Lifecycle: the pump used to run forever; it now has a stop protocol.
``request_drain()`` asks the loop to exit at the next round boundary
once the Full_Batch_Queue is empty; ``stop()`` interrupts it
immediately and restitutes any half-round state (host units back to the
Full_Batch_Queue, device buffers back to their free Trans Queues), so
unit conservation holds across a shutdown.  ``stop()`` is precise when
the pump is blocked waiting (its normal state); interrupting in the
same sim-timestep a queue get succeeded can drop that one in-flight
carrier — quiesce producers first.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..calib import Testbed
from ..engines import CpuCorePool, DeviceBatch
from ..memory import MemManager, MemoryUnit
from ..sim import Counter, Environment, Interrupt, deadline_of
from ..supervision import expire_request

__all__ = ["Dispatcher"]


class Dispatcher:
    """Moves full host batches to per-GPU device buffers, Algorithm 3."""

    def __init__(self, env: Environment, testbed: Testbed, pool: MemManager,
                 solvers: Sequence, cpu: Optional[CpuCorePool] = None,
                 name: str = "dispatcher",
                 heartbeat=None,
                 shed_deadlines: bool = False,
                 tracer=None,
                 rtracker=None):
        if not solvers:
            raise ValueError("dispatcher needs at least one solver")
        self.env = env
        self.testbed = testbed
        self.pool = pool
        # "all compute engines will register their communication channels
        # (i.e., Trans Queues) to the Dispatcher" (S3.4.3).
        self.solvers = list(solvers)
        self.cpu = cpu
        self.name = name
        self.heartbeat = heartbeat
        self.shed_deadlines = shed_deadlines
        self.tracer = tracer
        self.rtracker = rtracker   # repro.tracing.RequestTracker, optional
        self.batches_dispatched = Counter(env, name=f"{name}.batches")
        self.items_shed = Counter(env, name=f"{name}.items_shed")
        self.batches_shed = Counter(env, name=f"{name}.batches_shed")
        self._proc = None
        self._draining = False
        self._stopped = False

    def start(self) -> None:
        if self._proc is not None:
            raise RuntimeError("dispatcher already started")
        self._proc = self.env.process(self._loop(), name=self.name)

    # -- stop / drain protocol ---------------------------------------------
    @property
    def proc(self):
        """The pump process (an Event: ``yield dispatcher.proc`` joins)."""
        return self._proc

    @property
    def stopped(self) -> bool:
        return self._stopped

    def request_drain(self) -> None:
        """Ask the pump to exit at the next round boundary once the
        Full_Batch_Queue is empty.  Use when producers have finished; a
        pump already parked on an empty queue needs :meth:`stop`."""
        self._draining = True

    def stop(self) -> None:
        """Interrupt the pump now.  Half-round state is restituted so
        every memory unit and device buffer stays conserved."""
        if self._proc is None or self._stopped or not self._proc.is_alive:
            self._stopped = True
            return
        self._stopped = True
        self._proc.interrupt("dispatcher stop()")

    def _restitute(self, hsts: list, devs: list) -> None:
        """Return half-round carriers to their queues after an interrupt.

        Nothing here was published: host units go back to the
        Full_Batch_Queue for a future dispatcher, device buffers (reset;
        their payload was only an alias) to their solvers' free queues.
        """
        for hst_batch in hsts:
            if not self.pool.full_batch_queue.try_put(hst_batch):
                raise RuntimeError(
                    f"{self.name}: Full_Batch_Queue rejected a restituted "
                    f"unit (pool misuse)")
        for solver, dev_batch in zip(self.solvers, devs):
            dev_batch.reset()
            if not solver.trans_queues.free.try_put(dev_batch):
                raise RuntimeError(
                    f"{self.name}: free Trans Queue rejected a restituted "
                    f"device batch")

    # -- deadline shedding --------------------------------------------------
    def _shed_batch(self, hst_batch: MemoryUnit) -> None:
        """Drop expired items from a host batch before paying the PCIe
        copy; their issuers are failed with ``DeadlineExceeded``."""
        payload = hst_batch.payload
        if not isinstance(payload, list) or not payload:
            return
        now = self.env.now
        kept = [it for it in payload if deadline_of(it) > now]
        ndropped = len(payload) - len(kept)
        if ndropped == 0:
            return
        for it in payload:
            if deadline_of(it) <= now:
                expire_request(it, where=f"{self.name}.pre-copy")
        self.items_shed.add(ndropped)
        if self.tracer is not None:
            self.tracer.instant("shed:dispatcher", track="supervision")
        hst_batch.payload = kept
        hst_batch.item_count = len(kept)

    def _next_batch(self):
        """Generator: the next host batch with live work in it.  Batches
        whose every item expired while queued are recycled on the spot."""
        while True:
            if self.heartbeat is not None:
                self.heartbeat.waiting(self.pool.full_batch_queue.name)
            hst_batch: MemoryUnit = yield from self.pool.full_batch_queue.get()
            if self.heartbeat is not None:
                self.heartbeat.running()
            if self.shed_deadlines:
                self._shed_batch(hst_batch)
                if hst_batch.item_count == 0:
                    self.batches_shed.add()
                    self.pool.recycle_item_nowait(hst_batch)
                    continue
            return hst_batch

    # -- trace plumbing ------------------------------------------------------
    def _live_traces(self, hst_batch: MemoryUnit) -> list:
        payload = hst_batch.payload
        if not isinstance(payload, list):
            return []
        traces = (getattr(it, "trace", None) for it in payload)
        return [t for t in traces if t is not None and not t.is_finished]

    def _trace_copy_start(self, hst_batch: MemoryUnit) -> None:
        """The batch left the Full_Batch_Queue: its members are now being
        copied (device-buffer acquisition + PCIe transfer)."""
        for t in self._live_traces(hst_batch):
            t.mark("dispatch.copy", "service")

    def _trace_publish(self, hst_batch: MemoryUnit, solver,
                       copy_started: float) -> None:
        """Fan-out point: the copied batch lands in one solver's FULL
        Trans Queue.  Members start their gpu.trans wait; a flow arrow
        ties the batch-assembly span to the dispatch span."""
        traced = self._live_traces(hst_batch)
        if not traced:
            return
        for t in traced:
            t.mark("gpu.trans", "wait")
        tracer = self.rtracker.tracer
        if tracer is None or not self.rtracker.emit_spans:
            return
        label = (f"batch#{hst_batch.index}->"
                 f"{getattr(solver, 'name', 'solver')}")
        tracer.span_at(label, "dispatch", copy_started, self.env.now,
                       members=[t.trace_id for t in traced])
        fid = tracer.next_flow_id()
        tracer.flow(label, "batch.assembly", "s", fid, at=copy_started)
        tracer.flow(label, "dispatch", "f", fid)

    # -- the pump -----------------------------------------------------------
    def _loop(self):
        tb = self.testbed
        while True:
            if self._draining and len(self.pool.full_batch_queue) == 0:
                break
            working_hst: list[MemoryUnit] = []
            working_dev: list[DeviceBatch] = []
            copies = []
            copy_started = []
            try:
                # Phase 1 (Alg. 3 lines 1-11): one batch per solver, async.
                for solver in self.solvers:
                    hst_batch = yield from self._next_batch()
                    working_hst.append(hst_batch)
                    copy_started.append(self.env.now)
                    if self.rtracker is not None:
                        self._trace_copy_start(hst_batch)
                    if self.heartbeat is not None:
                        self.heartbeat.waiting(solver.trans_queues.free.name)
                    dev_batch: DeviceBatch = yield from \
                        solver.trans_queues.free.get()
                    if self.heartbeat is not None:
                        self.heartbeat.running()
                    working_dev.append(dev_batch)
                    if self.cpu is not None:
                        self.cpu.charge_unaccounted(
                            tb.dispatcher_batch_cost_s
                            + tb.cuda_launch_overhead_s, "transform")
                    copies.append(solver.gpu.memcpy_async(
                        max(hst_batch.used_bytes, 1)))
                    dev_batch.payload = hst_batch.payload
                    dev_batch.item_count = hst_batch.item_count
                    dev_batch.tag = hst_batch.index
                # Phase 2 (lines 12-18): sync streams, publish, recycle.
                for copy_evt in copies:
                    yield copy_evt
            except Interrupt:
                self._restitute(working_hst, working_dev)
                break
            # Publish + recycle without yielding: both queues have room
            # by construction (capacity == carrier population), so a
            # stop() can never land half way through a publish.
            for solver, hst_batch, dev_batch, started in zip(
                    self.solvers, working_hst, working_dev, copy_started):
                if self.rtracker is not None:
                    self._trace_publish(hst_batch, solver, started)
                if not solver.trans_queues.full.try_put(dev_batch):
                    raise RuntimeError(
                        f"{self.name}: full Trans Queue overflow")
                self.pool.recycle_item_nowait(hst_batch)
                self.batches_dispatched.add()
                if self.heartbeat is not None:
                    self.heartbeat.progress()
        self._stopped = True
        if self.heartbeat is not None:
            self.heartbeat.idle()
