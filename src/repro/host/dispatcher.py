"""Dispatcher — round-robin batch pump to the GPUs (paper Algorithm 3).

Phase 1: for every registered solver, take one full host batch and one
free device buffer, and launch an asynchronous copy on that solver's
stream.  Phase 2: synchronize every stream, hand the device buffers to
the solvers' FULL Trans Queues and recycle the host units.  The
async-submit/late-sync split is what lets one dispatcher thread feed
multiple GPUs at "reduced CPU cost" (S3.4.3).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..calib import Testbed
from ..engines import CpuCorePool, DeviceBatch
from ..memory import MemManager, MemoryUnit
from ..sim import Counter, Environment

__all__ = ["Dispatcher"]


class Dispatcher:
    """Moves full host batches to per-GPU device buffers, Algorithm 3."""

    def __init__(self, env: Environment, testbed: Testbed, pool: MemManager,
                 solvers: Sequence, cpu: Optional[CpuCorePool] = None,
                 name: str = "dispatcher"):
        if not solvers:
            raise ValueError("dispatcher needs at least one solver")
        self.env = env
        self.testbed = testbed
        self.pool = pool
        # "all compute engines will register their communication channels
        # (i.e., Trans Queues) to the Dispatcher" (S3.4.3).
        self.solvers = list(solvers)
        self.cpu = cpu
        self.name = name
        self.batches_dispatched = Counter(env, name=f"{name}.batches")
        self._proc = None

    def start(self) -> None:
        if self._proc is not None:
            raise RuntimeError("dispatcher already started")
        self._proc = self.env.process(self._loop(), name=self.name)

    def _loop(self):
        tb = self.testbed
        while True:
            working_hst: list[MemoryUnit] = []
            working_dev: list[DeviceBatch] = []
            copies = []
            # Phase 1 (Alg. 3 lines 1-11): one batch per solver, async.
            for solver in self.solvers:
                hst_batch: MemoryUnit = yield from \
                    self.pool.full_batch_queue.get()
                dev_batch: DeviceBatch = yield from \
                    solver.trans_queues.free.get()
                if self.cpu is not None:
                    self.cpu.charge_unaccounted(
                        tb.dispatcher_batch_cost_s
                        + tb.cuda_launch_overhead_s, "transform")
                copies.append(solver.gpu.memcpy_async(
                    max(hst_batch.used_bytes, 1)))
                dev_batch.payload = hst_batch.payload
                dev_batch.item_count = hst_batch.item_count
                dev_batch.tag = hst_batch.index
                working_hst.append(hst_batch)
                working_dev.append(dev_batch)
            # Phase 2 (lines 12-18): sync streams, publish, recycle.
            for solver, copy_evt in zip(self.solvers, copies):
                yield copy_evt
            for solver, hst_batch, dev_batch in zip(
                    self.solvers, working_hst, working_dev):
                yield from solver.trans_queues.full.put(dev_batch)
                yield from self.pool.recycle_item(hst_batch)
                self.batches_dispatched.add()
