"""Calibration constants, each annotated with its provenance in the paper.

These are the *inputs* to the simulation — primitive service rates and
physical parameters of the testbed the paper describes (2x Tesla P100,
2x Xeon E5-2630-v3 = 32 cores, Intel Arria-10 FPGA, Optane 900p NVMe,
40 Gbps NIC).  Every *result* (throughput, latency, CPU cores) is
measured from simulated activity; nothing downstream copies a figure
value directly.

Sources cited as (Sx.y) refer to sections of the DLBooster paper, and
(Fig. N) to its figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Testbed", "GpuModelSpec", "TRAIN_MODELS", "INFER_MODELS",
           "DEFAULT_TESTBED", "KB", "MB", "GB"]

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


@dataclass(frozen=True)
class GpuModelSpec:
    """Compute-cost profile of one DL model on the testbed GPU (P100).

    ``peak_rate`` is images/s/GPU at saturation; ``half_sat_batch`` the
    batch size at which the engine reaches half of peak (kernel-launch
    bound at tiny batches).  ``train_rate`` is the data-parallel training
    throughput per GPU at the paper's batch size.  ``input_hw`` the model
    input resolution after preprocessing.
    """

    name: str
    batch_size: int             # per GPU, as used in the paper's figures
    input_hw: tuple[int, int]
    channels: int
    train_rate: float = 0.0     # img/s/GPU (training figures)
    peak_rate: float = 0.0      # img/s/GPU at large batch (inference)
    half_sat_batch: float = 0.0
    scale_eff_2gpu: float = 1.0  # reference: paper-implied 2-GPU efficiency
    param_bytes: int = 0         # fp32 model size (drives allreduce time)
    # Kernel launches per inference batch (~ layer count); drives the
    # host-side launch CPU cost of Fig. 9.
    launches_per_batch: int = 80


# --- training models (Fig. 5 / Fig. 6) -------------------------------------
TRAIN_MODELS: dict[str, GpuModelSpec] = {
    # LeNet-5 on MNIST, batch 512/GPU; Fig. 5(a) tops out near 2e5 img/s
    # with 2 GPUs -> ~1.0e5 per GPU at the bound.
    "lenet5": GpuModelSpec(
        name="lenet5", batch_size=512, input_hw=(28, 28), channels=1,
        train_rate=100_000.0, scale_eff_2gpu=0.98,
        param_bytes=60_000 * 4),          # ~60k params
    # AlexNet, batch 256/GPU; Fig. 2 annotates the ideal backend at
    # 2,496 img/s (1 GPU) and 4,652 (2 GPUs) -> 93.2% scaling.
    "alexnet": GpuModelSpec(
        name="alexnet", batch_size=256, input_hw=(227, 227), channels=3,
        train_rate=2_496.0, scale_eff_2gpu=0.932,
        param_bytes=61_000_000 * 4),      # ~61M params
    # ResNet-18, batch 128/GPU; Fig. 5(c) reaches ~2,400 img/s at 2 GPUs.
    "resnet18": GpuModelSpec(
        name="resnet18", batch_size=128, input_hw=(224, 224), channels=3,
        train_rate=1_250.0, scale_eff_2gpu=0.96,
        param_bytes=11_700_000 * 4),      # ~11.7M params
}

# --- inference models (Fig. 7-9), TensorRT fp16 on P100 --------------------
INFER_MODELS: dict[str, GpuModelSpec] = {
    # Fig. 7(a): curves approach ~6,000 img/s; engine peak set slightly
    # above the FPGA decoder bound so the DLBooster saturation knee at
    # batch > 16 (S5.3) is decoder-induced, as the paper reports.
    "googlenet": GpuModelSpec(
        name="googlenet", batch_size=32, input_hw=(224, 224), channels=3,
        peak_rate=7_500.0, half_sat_batch=3.0, launches_per_batch=35),
    # Fig. 7(b): VGG-16 tops out near ~2,000 img/s.
    "vgg16": GpuModelSpec(
        name="vgg16", batch_size=32, input_hw=(224, 224), channels=3,
        peak_rate=2_300.0, half_sat_batch=2.5, launches_per_batch=25),
    # Fig. 7(c): ResNet-50 near ~5,200 img/s at batch 64 (cf. S2.2's
    # "V100 can process 5,000 images/s for ResNet-50").
    "resnet50": GpuModelSpec(
        name="resnet50", batch_size=64, input_hw=(224, 224), channels=3,
        peak_rate=5_600.0, half_sat_batch=4.0, launches_per_batch=40),
}


@dataclass(frozen=True)
class Testbed:
    """The paper's server (S5.1) expressed as simulation parameters."""

    # ------------------------------------------------------------ CPU
    # 2x Xeon E5-2630-v3: "32 cores in all" (S5.1).
    cpu_cores: int = 32
    # "each Xeon E5 CPU core can decode only 300 images per second"
    # (S2.2) for ImageNet-scale JPEGs; expressed as a cost model:
    # seconds = overhead + bytes/byte_rate + pixels/pixel_rate, calibrated
    # so the paper's 500x375 color JPEG (~110 KB, 187.5 kpix + chroma)
    # costs 1/300 s.
    cpu_decode_overhead_s: float = 30e-6
    cpu_decode_byte_rate: float = 60 * MB        # entropy decode, B/s
    cpu_decode_pixel_rate: float = 190e6         # iDCT+color, pix/s
    # Per-item small-piece copy overhead of CPU/LMDB loaders (S5.2:
    # "copy each datum to GPU in small pieces ... ~20% performance
    # downgrades" on LeNet-5).
    per_item_copy_overhead_s: float = 12e-6
    host_memcpy_rate: float = 25 * GB            # hot-cache memcpy B/s
    # CPU-side augmentation/transform (crop, mean-subtract, layout) cost
    # per pixel (contributes the "0.15 core on transforming", Fig. 6d).
    cpu_transform_pixel_rate: float = 2.0e9
    # Kernel-launch / solver busy fractions while a GPU trains (Fig. 6d:
    # 0.95 core launching kernels, 0.12 updating model per busy GPU).
    kernel_launch_core_frac: float = 0.95
    model_update_core_frac: float = 0.12

    # ------------------------------------------------------------ GPU
    gpu_count: int = 2                            # 2x Tesla P100 (S5.1)
    # Gradient allreduce over NVLink-class interconnect; with the ring
    # 2(n-1)/n factor this lands AlexNet's 2-GPU scaling at ~93%
    # (Fig. 2: 4,652 vs 2x2,496 ideal).
    allreduce_rate: float = 35 * GB
    pcie_copy_rate: float = 12 * GB               # host->device B/s
    cuda_launch_overhead_s: float = 30e-6         # per async memcpy/launch
    # nvJPEG (S5.3): decode kernels occupy ~30% of SMs while active and
    # the decoder sustains ~2,400 img/s on ImageNet-scale JPEGs; "the
    # decoding on nvJPEG needs to consume ~30% of GPU resources".
    nvjpeg_sm_share: float = 0.30
    nvjpeg_peak_rate: float = 2_400.0             # img/s, 500x375 color
    nvjpeg_batch_launch_s: float = 900e-6         # decode kernel-chain launch
    nvjpeg_cpu_per_image_s: float = 600e-6        # host busy-loop + launches;
                                                  # ~1.5 cores at saturation
                                                  # ("1~2 CPU cores", S5.3)

    # ----------------------------------------------------------- FPGA
    # Intel Arria-10 decoder (S4.1): "4-way Huffman and 2-way resizing
    # units".  Per-way service rates are set so the composed pipeline
    # saturates near 5,700-6,000 img/s on the inference corpus — the
    # knee DLBooster shows at batch > 16 in Fig. 7(a).
    fpga_huffman_ways: int = 4
    fpga_huffman_byte_rate: float = 170 * MB      # per way
    fpga_idct_pixel_rate: float = 1.7e9           # single iDCT unit
    fpga_resizer_ways: int = 2
    fpga_resizer_pixel_rate: float = 0.9e9        # per way
    fpga_cmd_overhead_s: float = 2e-6             # FIFO cmd parse per item
    fpga_dma_rate: float = 8 * GB                 # decoder->host DMA B/s
    fpga_queue_depth: int = 64                    # outstanding cmds
    # Host-side DLBooster threads: FPGAReader + dispatcher polling cost
    # "0.3 core on preprocessing" + "0.15 core on transforming" (Fig. 6d);
    # here as per-item and per-batch service costs.
    reader_cmd_cost_s: float = 1.0e-6
    dispatcher_batch_cost_s: float = 60e-6
    # Busy-poll duty cycles of the two daemon threads ("aggressively
    # submits cmds ... and pulls the processing status with the best
    # effort", S3.4.1).  Together with per-item costs these produce the
    # "0.3 core on preprocessing" / "0.15 core on transforming" split of
    # Fig. 6(d).
    reader_poll_core_frac: float = 0.28
    dispatcher_poll_core_frac: float = 0.13

    # -------------------------------------------------------- storage
    # Intel Optane 900p (S5.1): ~2.5 GB/s sequential read, ~10 us access.
    nvme_read_rate: float = 2.5 * GB
    nvme_access_latency_s: float = 10e-6
    nvme_max_queue: int = 64
    # LMDB-style shared KV backend: per-record service = lock/cursor
    # overhead + bytes at an effective rate limited by B-tree page walks
    # and reader-table contention.  Calibrated so ImageNet-datum records
    # (~197 KB raw) serve ~3,200 img/s aggregate — the plateau Fig. 2(b)
    # annotates (LMDB max 2,446/3,200 for 1/2 GPUs).
    lmdb_record_overhead_s: float = 4e-6
    lmdb_effective_byte_rate: float = 0.65 * GB
    # Offline ingest ("we spent more than 2 hours to prepare the LMDB
    # backend for ILSVRC12", S2.2) -> ~1,600 img/s conversion rate.
    lmdb_ingest_rate: float = 1_600.0

    # -------------------------------------------------------- network
    nic_rate: float = 40e9 / 8                    # 40 Gbps (S5.1), B/s
    nic_mtu: int = 9000
    nic_per_packet_s: float = 0.8e-6              # per-packet host cost
    inference_clients: int = 5                    # S5.3
    # Decode-worker budget for the CPU-based inference backend: the
    # paper burns "7~14 CPU cores per GPU" (S5.3) before other server
    # duties (clients, engine threads) claim the rest of the 32.
    cpu_infer_max_workers: int = 14
    # Page-cache budget for the hybrid offline primitive (S3.1): the
    # server has 64 GB DRAM; ~48 GB is realistically available to cache
    # decoded datasets.  MNIST fits; ILSVRC12 (~2 TB decoded) does not.
    cache_capacity_bytes: int = 48 * GB
    # "average image size is 500x375 ... stored in JPEG format" (S5.3).
    client_image_hw: tuple[int, int] = (375, 500)

    # -------------------------------------------------------- economics (S5.4)
    core_price_per_hour: float = 0.105            # "$0.10~0.11 per hour"
    fpga_equivalent_cores: int = 30               # "same ... as 30 cores"
    fpga_power_w: float = 25.0
    cpu_power_w: float = 130.0
    gpu_power_w: float = 250.0
    electricity_per_kwh: float = 0.12
    fpga_card_price: float = 4_000.0              # Arria-10 board, order of
    hours_per_year: float = 8_760.0

    # ------------------------------------------------- derived helpers
    def cpu_decode_seconds(self, nbytes: int, npixels: int) -> float:
        """One-core software JPEG decode time (S2.2 anchor: ~1/300 s for
        a 500x375 color JPEG)."""
        return (self.cpu_decode_overhead_s
                + nbytes / self.cpu_decode_byte_rate
                + npixels / self.cpu_decode_pixel_rate)

    def per_item_copy_seconds(self, nbytes: int) -> float:
        """Small-piece per-datum copy cost of CPU/LMDB loaders (S5.2)."""
        return self.per_item_copy_overhead_s + nbytes / self.host_memcpy_rate

    def lmdb_record_seconds(self, nbytes: int) -> float:
        """Shared-environment service time for one record read."""
        return (self.lmdb_record_overhead_s
                + nbytes / self.lmdb_effective_byte_rate)

    def transform_seconds(self, npixels: int) -> float:
        return npixels / self.cpu_transform_pixel_rate


DEFAULT_TESTBED = Testbed()
