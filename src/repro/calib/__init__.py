"""Calibration constants for the simulated testbed, with paper provenance."""

from .constants import (DEFAULT_TESTBED, GB, INFER_MODELS, KB, MB,
                        TRAIN_MODELS, GpuModelSpec, Testbed)

__all__ = ["Testbed", "GpuModelSpec", "DEFAULT_TESTBED", "TRAIN_MODELS",
           "INFER_MODELS", "KB", "MB", "GB"]
