"""NVMe disk model (Intel Optane 900p, S5.1).

Timing model: a read costs a fixed access latency plus transfer time at
the device's aggregate bandwidth; transfers serialize on the bandwidth
while latencies overlap (NVMe queues many commands).  Admission is
bounded by the device queue depth, so a flood of readers sees queueing
delay rather than infinite parallelism — this is what throttles the
data plane when preprocessing outpaces storage.

An armed :class:`~repro.faults.FaultInjector` can fail a read with
:class:`NvmeReadError` (``nvme_error``) or stretch its access phase
(``nvme_latency`` — a device stall / GC pause).
"""

from __future__ import annotations

from ..calib import Testbed
from ..sim import BusyTracker, Counter, Environment, Resource

__all__ = ["NvmeDisk", "NvmeReadError"]


class NvmeReadError(IOError):
    """A device-level read failure (injected; the real disk never lies)."""


class NvmeDisk:
    """Shared NVMe device with bounded queue depth and finite bandwidth."""

    def __init__(self, env: Environment, testbed: Testbed,
                 name: str = "nvme", injector=None):
        self.env = env
        self.name = name
        self.injector = injector
        self.read_rate = testbed.nvme_read_rate
        self.access_latency = testbed.nvme_access_latency_s
        self._queue = Resource(env, capacity=testbed.nvme_max_queue,
                               name=f"{name}.queue")
        self._bandwidth = Resource(env, capacity=1, name=f"{name}.bw")
        self.bytes_read = Counter(env, name=f"{name}.bytes")
        self.read_errors = Counter(env, name=f"{name}.read_errors")
        self.busy = BusyTracker(env, name=f"{name}.busy")

    def read(self, nbytes: int):
        """Generator: complete when ``nbytes`` have arrived in host memory."""
        if nbytes <= 0:
            raise ValueError(f"read size must be positive, got {nbytes}")
        access = self.access_latency
        if self.injector is not None:
            if self.injector.nvme_read_error(self.name):
                self.read_errors.add()
                raise NvmeReadError(f"{self.name}: injected read error")
            access += self.injector.nvme_extra_latency_s(self.name)
        slot = self._queue.request()
        yield slot
        try:
            # Seek/access phase: overlaps with other commands.
            yield self.env.timeout(access)
            # Transfer phase: serialized on device bandwidth.
            grant = self._bandwidth.request()
            yield grant
            tok = self.busy.begin("transfer")
            try:
                yield self.env.timeout(nbytes / self.read_rate)
            finally:
                self.busy.end(tok)
                self._bandwidth.release(grant)
            self.bytes_read.add(nbytes)
        finally:
            self._queue.release(slot)

    def utilization(self) -> float:
        """Fraction of wall time the transfer engine was busy."""
        return self.busy.cores("transfer")

    @property
    def queue_len(self) -> int:
        return self._queue.queue_len
