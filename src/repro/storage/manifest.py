"""Dataset manifests: the block-level metadata DataCollector translates.

The paper's DataCollector "translates the metadata (i.e., block
information) that describes the storage information of the data on the
disk" (S3.4.1).  A :class:`FileManifest` is that metadata: per sample,
its logical blocks on the (simulated) NVMe device plus the image
properties the cost models need (encoded bytes, decoded pixels).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

__all__ = ["BlockExtent", "FileEntry", "FileManifest", "BLOCK_SIZE"]

BLOCK_SIZE = 4096  # logical block size of the simulated NVMe namespace


@dataclass(frozen=True)
class BlockExtent:
    """A contiguous run of logical blocks."""

    lba: int
    block_count: int

    @property
    def nbytes(self) -> int:
        return self.block_count * BLOCK_SIZE


@dataclass(frozen=True)
class FileEntry:
    """One sample on disk: identity, extent, and decode-cost metadata."""

    file_id: int
    name: str
    size_bytes: int
    extents: tuple[BlockExtent, ...]
    height: int
    width: int
    channels: int
    label: int = 0
    payload: Optional[bytes] = None  # real JPEG bytes in functional mode

    @property
    def pixels(self) -> int:
        return self.height * self.width

    @property
    def decode_work_pixels(self) -> int:
        """Pixels including chroma planes (4:2:0 -> x1.5 for color)."""
        return self.pixels if self.channels == 1 else self.pixels * 3 // 2

    def get_metainfo(self) -> dict:
        """The paper's ``file.get_metainfo()`` (Algorithm 1 line 11)."""
        return {
            "file_id": self.file_id,
            "size_bytes": self.size_bytes,
            "extents": self.extents,
            "shape": (self.height, self.width, self.channels),
        }


class FileManifest:
    """An ordered collection of :class:`FileEntry` with a block allocator."""

    def __init__(self, name: str = "dataset"):
        self.name = name
        self._entries: list[FileEntry] = []
        self._next_lba = 0

    def add(self, name: str, size_bytes: int, height: int, width: int,
            channels: int, label: int = 0,
            payload: Optional[bytes] = None) -> FileEntry:
        if size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        nblocks = -(-size_bytes // BLOCK_SIZE)
        extent = BlockExtent(lba=self._next_lba, block_count=nblocks)
        self._next_lba += nblocks
        entry = FileEntry(
            file_id=len(self._entries), name=name, size_bytes=size_bytes,
            extents=(extent,), height=height, width=width,
            channels=channels, label=label, payload=payload)
        self._entries.append(entry)
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def __getitem__(self, idx: int) -> FileEntry:
        return self._entries[idx]

    def __iter__(self) -> Iterator[FileEntry]:
        return iter(self._entries)

    @property
    def total_bytes(self) -> int:
        return sum(e.size_bytes for e in self._entries)

    @property
    def total_blocks(self) -> int:
        return self._next_lba

    def epoch_order(self, rng=None) -> Sequence[int]:
        """Sample order for one epoch; shuffled when an RNG is given."""
        import numpy as np
        idx = np.arange(len(self._entries))
        if rng is not None:
            rng.shuffle(idx)
        return idx
