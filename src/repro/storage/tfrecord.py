"""TFRecord-style sequential format (TensorFlow's offline primitive [17]).

Wire format per record:

    length   : uint64 LE
    crc(len) : uint32 LE, *masked* CRC32C of the 8 length bytes
    payload  : length bytes
    crc(data): uint32 LE, masked CRC32C of the payload

CRC32C (Castagnoli) is implemented from scratch (table-driven,
reflected polynomial 0x82F63B78), and the mask is TensorFlow's
``rotr15 + 0xa282ead8`` so files interoperate with real TFRecord
readers byte-for-byte.
"""

from __future__ import annotations

import struct
from typing import Iterator

__all__ = ["crc32c", "masked_crc", "TFRecordWriter", "TFRecordReader",
           "TFRecordError"]


class TFRecordError(RuntimeError):
    """Corrupt or truncated TFRecord input."""


def _build_crc32c_table() -> list[int]:
    poly = 0x82F63B78
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ poly if crc & 1 else crc >> 1
        table.append(crc)
    return table


_TABLE = _build_crc32c_table()


def crc32c(data: bytes, crc: int = 0) -> int:
    """CRC32C (Castagnoli) of ``data``; chainable via ``crc``."""
    crc ^= 0xFFFFFFFF
    for byte in data:
        crc = _TABLE[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


def masked_crc(data: bytes) -> int:
    """TensorFlow's masked CRC: rotate right 15 and add a constant."""
    crc = crc32c(data)
    return (((crc >> 15) | (crc << 17)) + 0xA282EAD8) & 0xFFFFFFFF


class TFRecordWriter:
    """Appends records in the TensorFlow wire format."""

    def __init__(self, path: str):
        self.path = path
        self._fh = open(path, "wb")
        self.record_count = 0

    def write(self, payload: bytes) -> None:
        if not isinstance(payload, bytes):
            raise TypeError("payload must be bytes")
        header = struct.pack("<Q", len(payload))
        self._fh.write(header)
        self._fh.write(struct.pack("<I", masked_crc(header)))
        self._fh.write(payload)
        self._fh.write(struct.pack("<I", masked_crc(payload)))
        self.record_count += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


class TFRecordReader:
    """Strict sequential reader; corruption raises (TFRecord has no
    resync magic — unlike RecordIO, a bad record poisons the tail)."""

    def __init__(self, path: str):
        self.path = path
        self._fh = open(path, "rb")

    def __iter__(self) -> Iterator[bytes]:
        while True:
            header = self._fh.read(8)
            if not header:
                return
            if len(header) < 8:
                raise TFRecordError("truncated length field")
            crc_bytes = self._fh.read(4)
            if len(crc_bytes) < 4:
                raise TFRecordError("truncated length crc")
            if struct.unpack("<I", crc_bytes)[0] != masked_crc(header):
                raise TFRecordError("length crc mismatch")
            (length,) = struct.unpack("<Q", header)
            payload = self._fh.read(length)
            if len(payload) < length:
                raise TFRecordError("truncated payload")
            data_crc = self._fh.read(4)
            if len(data_crc) < 4:
                raise TFRecordError("truncated payload crc")
            if struct.unpack("<I", data_crc)[0] != masked_crc(payload):
                raise TFRecordError("payload crc mismatch")
            yield payload

    def close(self) -> None:
        self._fh.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
