"""RecordIO-style sequential record format (MXNet's offline backend).

The paper's related-work section lists RecordIO [2] and TFRecord [17] as
the other offline primitives; we provide one concrete sequential format
so the offline-ingest comparison isn't LMDB-specific.  Wire format per
record, after a file header:

    magic (4 B) | flags:3 bits + length:29 bits (4 B, LE) | crc32 (4 B)
    | payload | pad to 4-byte boundary

Readers resynchronize by scanning for the magic, so a corrupt record
skips forward instead of poisoning the rest of the file.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Iterator, Optional

__all__ = ["RecordWriter", "RecordReader", "IndexedRecordFile",
           "RecordFormatError"]

_FILE_HEADER = b"RIO1"
_REC_MAGIC = 0x6D782E72  # arbitrary tag
_HEADER = struct.Struct("<III")  # magic, flags_len, crc
_LEN_MASK = (1 << 29) - 1


class RecordFormatError(RuntimeError):
    """Malformed RecordIO input (bad magic, oversized record)."""


def _pad(n: int) -> int:
    return (-n) % 4


class RecordWriter:
    """Appends records; returns each record's byte offset for indexing."""

    def __init__(self, path: str):
        self.path = path
        self._fh = open(path, "wb")
        self._fh.write(_FILE_HEADER)
        self._pos = len(_FILE_HEADER)
        self.record_count = 0

    def write(self, payload: bytes, flags: int = 0) -> int:
        if not isinstance(payload, bytes):
            raise TypeError("payload must be bytes")
        if len(payload) > _LEN_MASK:
            raise RecordFormatError("record too large (>512 MiB)")
        if not 0 <= flags < 8:
            raise ValueError("flags must be 0..7")
        offset = self._pos
        flags_len = (flags << 29) | len(payload)
        self._fh.write(_HEADER.pack(_REC_MAGIC, flags_len,
                                    zlib.crc32(payload)))
        self._fh.write(payload)
        self._fh.write(b"\x00" * _pad(len(payload)))
        self._pos += _HEADER.size + len(payload) + _pad(len(payload))
        self.record_count += 1
        return offset

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


class RecordReader:
    """Sequential reader with magic-scan resynchronization."""

    def __init__(self, path: str):
        self.path = path
        self._fh = open(path, "rb")
        if self._fh.read(4) != _FILE_HEADER:
            raise RecordFormatError(f"{path}: not a RecordIO file")
        self.skipped = 0  # corrupt records resynced past

    def __iter__(self) -> Iterator[tuple[int, bytes]]:
        """Yields (flags, payload) pairs."""
        while True:
            rec = self._read_one()
            if rec is None:
                return
            yield rec

    def read_at(self, offset: int) -> tuple[int, bytes]:
        """Random access via an index offset."""
        self._fh.seek(offset)
        rec = self._read_one(resync=False)
        if rec is None:
            raise RecordFormatError(f"no record at offset {offset}")
        return rec

    def _read_one(self, resync: bool = True) -> Optional[tuple[int, bytes]]:
        while True:
            header = self._fh.read(_HEADER.size)
            if len(header) < _HEADER.size:
                return None
            magic, flags_len, crc = _HEADER.unpack(header)
            if magic != _REC_MAGIC:
                if not resync:
                    raise RecordFormatError("bad record magic")
                # Slide forward one byte and rescan.
                self._fh.seek(-(_HEADER.size - 1), os.SEEK_CUR)
                self.skipped += 1
                continue
            length = flags_len & _LEN_MASK
            flags = flags_len >> 29
            payload = self._fh.read(length)
            if len(payload) < length:
                return None  # torn tail
            self._fh.read(_pad(length))
            if zlib.crc32(payload) != crc:
                if not resync:
                    raise RecordFormatError("record CRC mismatch")
                self.skipped += 1
                continue
            return flags, payload

    def close(self) -> None:
        self._fh.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


class IndexedRecordFile:
    """RecordIO file + sidecar offset index for O(1) random access."""

    def __init__(self, path: str):
        self.path = path
        self.index_path = path + ".idx"

    @classmethod
    def build(cls, path: str, payloads) -> "IndexedRecordFile":
        obj = cls(path)
        offsets = []
        with RecordWriter(path) as writer:
            for payload in payloads:
                offsets.append(writer.write(payload))
        with open(obj.index_path, "wb") as fh:
            fh.write(struct.pack("<I", len(offsets)))
            for off in offsets:
                fh.write(struct.pack("<Q", off))
        return obj

    def offsets(self) -> list[int]:
        with open(self.index_path, "rb") as fh:
            count = struct.unpack("<I", fh.read(4))[0]
            return [struct.unpack("<Q", fh.read(8))[0] for _ in range(count)]

    def read(self, index: int) -> bytes:
        offs = self.offsets()
        if not 0 <= index < len(offs):
            raise IndexError(index)
        with RecordReader(self.path) as reader:
            return reader.read_at(offs[index])[1]

    def __len__(self) -> int:
        return len(self.offsets())
