"""An LMDB-like embedded key-value store (the Caffe offline backend).

The paper's training baseline reads datums out of LMDB [50].  We rebuild
the essential semantics from scratch:

* single writer / many readers, with explicit transactions;
* keys served in sorted order via cursors (Caffe iterates sequentially);
* append-only data file with length-prefixed, checksummed records and a
  rebuildable index — a crash mid-write loses at most the torn tail;
* read-only transactions see a consistent snapshot (records committed
  before the transaction began).

Timing is *not* modelled here — this class is the functional substrate;
the LMDB *backend* (:mod:`repro.backends.lmdb_backend`) charges the
calibrated per-record service time and models multi-reader contention.
"""

from __future__ import annotations

import io
import os
import struct
import zlib
from bisect import bisect_left, insort
from typing import Iterator, Optional

__all__ = ["KVStore", "ReadTransaction", "WriteTransaction", "KVError"]

_MAGIC = b"RKV1"
_REC_HEADER = struct.Struct("<IIQ")  # key_len, val_len, crc64-ish (crc32 x2)


class KVError(RuntimeError):
    """Store misuse or corruption."""


def _crc(key: bytes, value: bytes) -> int:
    return (zlib.crc32(key) << 32) | zlib.crc32(value)


class KVStore:
    """The environment object: open/close, transactions, stats."""

    def __init__(self, path: str, readonly: bool = False):
        self.path = path
        self.readonly = readonly
        self._data_path = os.path.join(path, "data.rkv")
        self._index: dict[bytes, tuple[int, int]] = {}  # key -> (off, vlen)
        self._sorted_keys: list[bytes] = []
        self._write_open = False
        self._readers = 0
        self._commit_seq = 0
        os.makedirs(path, exist_ok=True)
        if not os.path.exists(self._data_path):
            if readonly:
                raise KVError(f"no store at {path}")
            with open(self._data_path, "wb") as fh:
                fh.write(_MAGIC)
        self._fh = open(self._data_path, "rb" if readonly else "r+b")
        self._recover()

    # -- recovery ----------------------------------------------------
    def _recover(self) -> None:
        """Scan the log, rebuild the index, truncate any torn tail."""
        fh = self._fh
        fh.seek(0)
        if fh.read(4) != _MAGIC:
            raise KVError("bad magic: not a KVStore data file")
        pos = 4
        valid_end = 4
        while True:
            header = fh.read(_REC_HEADER.size)
            if len(header) < _REC_HEADER.size:
                break
            key_len, val_len, crc = _REC_HEADER.unpack(header)
            body = fh.read(key_len + val_len)
            if len(body) < key_len + val_len:
                break  # torn write
            key, value = body[:key_len], body[key_len:]
            if _crc(key, value) != crc:
                break  # corrupt tail
            if key not in self._index:
                insort(self._sorted_keys, key)
            value_off = pos + _REC_HEADER.size + key_len
            self._index[key] = (value_off, val_len)
            pos += _REC_HEADER.size + key_len + val_len
            valid_end = pos
        if not self.readonly:
            self._fh.truncate(valid_end)
        self._append_pos = valid_end

    # -- transactions --------------------------------------------------
    def begin(self, write: bool = False):
        if write:
            if self.readonly:
                raise KVError("store opened read-only")
            if self._write_open:
                raise KVError("a write transaction is already open "
                              "(single-writer store)")
            self._write_open = True
            return WriteTransaction(self)
        self._readers += 1
        return ReadTransaction(self, snapshot_seq=self._commit_seq)

    # -- raw access (used by transactions) ------------------------------
    def _read_value(self, key: bytes) -> Optional[bytes]:
        loc = self._index.get(key)
        if loc is None:
            return None
        off, vlen = loc
        self._fh.seek(off)
        return self._fh.read(vlen)

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()

    def __enter__(self) -> "KVStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- stats -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: bytes) -> bool:
        return key in self._index

    @property
    def data_bytes(self) -> int:
        return self._append_pos

    @property
    def active_readers(self) -> int:
        return self._readers


class ReadTransaction:
    """A consistent snapshot reader with a sorted cursor."""

    def __init__(self, store: KVStore, snapshot_seq: int):
        self._store = store
        self._snapshot = snapshot_seq
        self._open = True
        # Snapshot the key list: later commits don't appear.
        self._keys = list(store._sorted_keys)

    def get(self, key: bytes) -> Optional[bytes]:
        self._check()
        if key not in self._keys_set():
            return None
        return self._store._read_value(key)

    def _keys_set(self):
        if not hasattr(self, "_kset"):
            self._kset = set(self._keys)
        return self._kset

    def cursor(self, start: Optional[bytes] = None) -> Iterator[
            tuple[bytes, bytes]]:
        """Iterate (key, value) in sorted key order from ``start``."""
        self._check()
        begin = 0 if start is None else bisect_left(self._keys, start)
        for key in self._keys[begin:]:
            yield key, self._store._read_value(key)

    def keys(self) -> list[bytes]:
        self._check()
        return list(self._keys)

    def abort(self) -> None:
        self.commit()

    def commit(self) -> None:
        if self._open:
            self._open = False
            self._store._readers -= 1

    def _check(self) -> None:
        if not self._open:
            raise KVError("transaction is closed")

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.commit()


class WriteTransaction:
    """Buffered single-writer transaction; atomic on commit."""

    def __init__(self, store: KVStore):
        self._store = store
        self._pending: dict[bytes, bytes] = {}
        self._open = True

    def put(self, key: bytes, value: bytes) -> None:
        self._check()
        if not isinstance(key, bytes) or not isinstance(value, bytes):
            raise TypeError("keys and values must be bytes")
        if not key:
            raise KVError("empty key")
        self._pending[key] = value

    def get(self, key: bytes) -> Optional[bytes]:
        """Read-your-writes within the transaction."""
        self._check()
        if key in self._pending:
            return self._pending[key]
        return self._store._read_value(key)

    def commit(self) -> None:
        self._check()
        store = self._store
        buf = io.BytesIO()
        for key, value in self._pending.items():
            buf.write(_REC_HEADER.pack(len(key), len(value),
                                       _crc(key, value)))
            buf.write(key)
            buf.write(value)
        data = buf.getvalue()
        store._fh.seek(store._append_pos)
        store._fh.write(data)
        store._fh.flush()
        # Publish: update index only after the bytes are durable.
        pos = store._append_pos
        for key, value in self._pending.items():
            if key not in store._index:
                insort(store._sorted_keys, key)
            value_off = pos + _REC_HEADER.size + len(key)
            store._index[key] = (value_off, len(value))
            pos += _REC_HEADER.size + len(key) + len(value)
        store._append_pos = pos
        store._commit_seq += 1
        self._open = False
        store._write_open = False

    def abort(self) -> None:
        self._check()
        self._pending.clear()
        self._open = False
        self._store._write_open = False

    def _check(self) -> None:
        if not self._open:
            raise KVError("transaction is closed")

    def __enter__(self):
        return self

    def __exit__(self, exc_type, *exc):
        if self._open:
            if exc_type is None:
                self.commit()
            else:
                self.abort()
