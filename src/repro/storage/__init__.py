"""Storage substrates: NVMe timing model, dataset manifests, an
LMDB-like KV store and a RecordIO format."""

from .kvstore import KVError, KVStore, ReadTransaction, WriteTransaction
from .manifest import BLOCK_SIZE, BlockExtent, FileEntry, FileManifest
from .nvme import NvmeDisk, NvmeReadError
from .recordio import (IndexedRecordFile, RecordFormatError, RecordReader,
                       RecordWriter)
from .tfrecord import (TFRecordError, TFRecordReader, TFRecordWriter,
                       crc32c, masked_crc)

__all__ = ["NvmeDisk", "NvmeReadError", "FileManifest", "FileEntry", "BlockExtent",
           "BLOCK_SIZE", "KVStore", "KVError", "ReadTransaction",
           "WriteTransaction", "RecordWriter", "RecordReader",
           "IndexedRecordFile", "RecordFormatError",
           "TFRecordWriter", "TFRecordReader", "TFRecordError",
           "crc32c", "masked_crc"]
