"""Shim enabling legacy editable installs (`pip install -e . --no-use-pep517`)
on environments without the `wheel` package (this offline sandbox)."""

from setuptools import setup

setup()
