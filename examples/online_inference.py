#!/usr/bin/env python3
"""Online image inference behind a 40 Gbps NIC (the Fig. 7-9 workload).

Five closed-loop clients stream 500x375 JPEGs at the serving stack;
compare how the three online backends (CPU decode, nvJPEG on the GPU,
DLBooster on the FPGA) trade throughput, latency and CPU cores.

Run:  python examples/online_inference.py [--model resnet50] [--batch 32]
"""

import argparse

from repro.workflows import (INFERENCE_BACKENDS, InferenceConfig,
                             run_inference)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="googlenet",
                        choices=["googlenet", "vgg16", "resnet50"])
    parser.add_argument("--batch", type=int, default=32)
    parser.add_argument("--backend", default=None,
                        choices=list(INFERENCE_BACKENDS))
    parser.add_argument("--measure", type=float, default=4.0)
    args = parser.parse_args()

    backends = [args.backend] if args.backend else list(INFERENCE_BACKENDS)
    print(f"model={args.model} batch={args.batch}, 5 clients over 40 Gbps, "
          f"TensorRT fp16")
    print(f"{'backend':>12} {'img/s':>9} {'mean ms':>8} {'p99 ms':>8} "
          f"{'cores':>7} {'gpu stolen':>11}")
    for backend in backends:
        res = run_inference(InferenceConfig(
            model=args.model, backend=backend, batch_size=args.batch,
            warmup_s=1.0, measure_s=args.measure))
        stolen = res.gpu_decode_util * 0.30  # decode busy x SM share
        print(f"{backend:>12} {res.throughput:>9,.0f} "
              f"{res.latency_mean_ms:>8.2f} {res.latency_p99_ms:>8.2f} "
              f"{res.cpu_cores:>7.2f} {100 * stolen:>10.1f}%")


if __name__ == "__main__":
    main()
