#!/usr/bin/env python3
"""Offline training on an ILSVRC12-like corpus (the Fig. 5 workload).

Compares preprocessing backends feeding data-parallel NVCaffe-style
solvers and reports throughput, efficiency against the GPU bound, and
CPU cores burned.

Run:  python examples/train_imagenet.py [--model alexnet] [--gpus 2]
      python examples/train_imagenet.py --backend dlbooster --gpus 2
"""

import argparse

from repro.workflows import (TRAINING_BACKENDS, TrainingConfig,
                             run_training)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="alexnet",
                        choices=["lenet5", "alexnet", "resnet18"])
    parser.add_argument("--gpus", type=int, default=2, choices=[1, 2])
    parser.add_argument("--backend", default=None,
                        choices=list(TRAINING_BACKENDS),
                        help="run one backend (default: compare all)")
    parser.add_argument("--measure", type=float, default=5.0,
                        help="measurement window, simulated seconds")
    args = parser.parse_args()

    backends = [args.backend] if args.backend else list(TRAINING_BACKENDS)
    print(f"model={args.model} gpus={args.gpus} "
          f"(batch sizes per the paper: LeNet 512, AlexNet 256, "
          f"ResNet-18 128)")
    print(f"{'backend':>12} {'img/s':>10} {'% bound':>8} "
          f"{'cores':>7} {'cores/GPU':>10}  breakdown")
    for backend in backends:
        res = run_training(TrainingConfig(
            model=args.model, backend=backend, num_gpus=args.gpus,
            warmup_s=1.5, measure_s=args.measure))
        breakdown = ", ".join(f"{k}={v:.2f}"
                              for k, v in sorted(res.cpu_breakdown.items())
                              if v >= 0.01)
        print(f"{backend:>12} {res.throughput:>10,.0f} "
              f"{100 * res.efficiency:>7.1f}% {res.cpu_cores:>7.2f} "
              f"{res.cpu_cores_per_gpu:>10.2f}  {breakdown}")
        if backend == "lmdb":
            print(f"{'':>12} (one-time LMDB ingest: "
                  f"{res.extras['ingest_seconds'] / 60:.0f} min for this "
                  f"400k-image stand-in; >2 h for the real 12.8M-image "
                  f"ILSVRC12)")


if __name__ == "__main__":
    main()
