#!/usr/bin/env python3
"""Export a Chrome/Perfetto trace of the FPGA decode pipeline.

Runs a burst of decodes through the decoder mirror with span tracing on
every pipeline way, then writes ``decoder_trace.json`` — open it at
chrome://tracing or https://ui.perfetto.dev to *see* the paper's
Figure 4 executing: 4 Huffman lanes interleaving, the single iDCT unit
saturated, the 2 resizer lanes trailing.

Run:  python examples/trace_pipeline.py [output.json]
"""

import sys

from repro.calib import DEFAULT_TESTBED
from repro.fpga import DecodeCmd, FpgaDevice, FPGAChannel, ImageDecoderMirror
from repro.sim import Environment, Tracer


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "decoder_trace.json"
    env = Environment()
    tracer = Tracer(env)

    device = FpgaDevice(env, DEFAULT_TESTBED)
    mirror = ImageDecoderMirror(env, DEFAULT_TESTBED)
    # Attach the tracer to every pipeline unit before the ways start.
    for unit in (mirror.parser, mirror.huffman, mirror.idct, mirror.resizer):
        unit.tracer = tracer
    device.load_mirror(mirror)
    channel = FPGAChannel(env, mirror)

    n = 64

    def submit(env):
        for i in range(n):
            cmd = DecodeCmd(
                cmd_id=i, source="dram", size_bytes=110_000,
                work_pixels=int(375 * 500 * 1.5), out_h=224, out_w=224,
                channels=3, dest_phy=0x4000_0000, dest_offset=0)
            yield from channel.submit_cmd(cmd)

    done = []

    def collect(env):
        while len(done) < n:
            done.append((yield from channel.wait_one()))
            tracer.instant(f"finish-{len(done)}", "FINISH arbiter")

    env.process(submit(env))
    proc = env.process(collect(env))
    env.run(until=proc)

    tracer.to_chrome_trace(out_path)
    print(f"decoded {n} images in {env.now * 1e3:.2f} ms simulated "
          f"({n / env.now:,.0f} img/s)")
    print(f"{len(tracer.spans)} spans across {len(tracer.tracks())} tracks "
          f"written to {out_path}")
    for track in sorted(tracer.tracks()):
        busy = tracer.busy_time(track) / env.now
        print(f"  {track:24s} {100 * busy:5.1f}% busy")


if __name__ == "__main__":
    main()
