#!/usr/bin/env python3
"""Distributed training with co-located parameter servers (S3.1 study).

The paper's first argument for offloading: decode workers steal the CPU
cores that parameter-server aggregation needs.  This example sweeps the
per-server core budget and shows where the CPU-based backend's decode
load starts stalling the whole synchronous ring — and that the
offloaded backend never notices.

Run:  python examples/distributed_ps.py [--world 4]
"""

import argparse
import dataclasses

from repro.calib import DEFAULT_TESTBED
from repro.cluster import PsStudyConfig, run_ps_study


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--world", type=int, default=4,
                        help="servers in the PS ring (1 GPU each)")
    parser.add_argument("--measure", type=float, default=8.0)
    args = parser.parse_args()

    print(f"AlexNet, {args.world}-server sharded PS ring over 40 Gbps")
    print(f"{'cores/server':>13} {'backend':>12} {'img/s':>8} "
          f"{'iter ms':>8} {'cpu cores':>10} {'agg cores':>10}")
    for cores in (32, 8, 6, 4):
        testbed = dataclasses.replace(DEFAULT_TESTBED, cpu_cores=cores)
        for backend in ("dlbooster", "cpu-online"):
            res = run_ps_study(PsStudyConfig(
                backend=backend, world=args.world, warmup_s=1.0,
                measure_s=args.measure), testbed=testbed)
            print(f"{cores:>13} {backend:>12} {res.throughput:>8,.0f} "
                  f"{res.iteration_s * 1e3:>8.1f} "
                  f"{res.cpu_cores_per_server:>10.2f} "
                  f"{res.agg_cores_per_server:>10.2f}")


if __name__ == "__main__":
    main()
