#!/usr/bin/env python3
"""Quickstart: decode real JPEGs through the DLBooster pipeline.

Builds the smallest complete stack — an FPGA device programmed with the
image-decoder mirror, a hugepage memory pool, FPGAReader — in
*functional* mode, so actual JPEG bytes flow through the simulated
hardware and real pixels land in the batch buffers.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.calib import DEFAULT_TESTBED
from repro.data import functional_jpeg_manifest
from repro.fpga import FpgaDevice, FPGAChannel, ImageDecoderMirror
from repro.host import BatchSpec, DataCollector, FPGAReader
from repro.jpeg import decode_resized
from repro.memory import MemManager
from repro.sim import Environment, SeedBank


def main() -> None:
    env = Environment()
    testbed = DEFAULT_TESTBED

    # A tiny corpus of real JPEG bytes (synthesised by our encoder).
    manifest = functional_jpeg_manifest(n=16, h=96, w=128,
                                        seeds=SeedBank(42))
    print(f"corpus: {len(manifest)} JPEGs, "
          f"{manifest.total_bytes / 1024:.0f} KiB total")

    # Batches of 4 images resized to 64x64x3.
    spec = BatchSpec(batch_size=4, out_h=64, out_w=64, channels=3)
    pool = MemManager(env, unit_size=spec.batch_bytes, unit_count=4)

    # Program the FPGA with the (functional) image-decoder mirror.
    device = FpgaDevice(env, testbed)
    mirror = ImageDecoderMirror(env, testbed, functional=True,
                                host_pool=pool)
    device.load_mirror(mirror)
    print(f"FPGA: {device.clb_used:,} / {device.clb_budget:,} CLBs used "
          f"by '{mirror.name}'")

    collector = DataCollector(env)
    collector.load_from_disk(manifest)
    reader = FPGAReader(env, testbed, FPGAChannel(env, mirror), pool, spec)

    def feed(env):
        yield from reader.run_epoch(collector.disk_epoch())

    proc = env.process(feed(env))
    env.run(until=proc)

    print(f"decoded {int(mirror.decoded.total)} images into "
          f"{int(reader.batches_produced.total)} batches "
          f"in {env.now * 1e3:.2f} ms of simulated time "
          f"({mirror.decoded.total / env.now:,.0f} img/s)")
    print(f"decoder stage utilizations: "
          f"{ {k: round(v, 2) for k, v in mirror.stage_utilizations().items()} }")

    # Pull one batch and verify the pixels are the real decode output.
    ok, unit = pool.full_batch_queue.try_get()
    assert ok
    first = unit.read(0, spec.item_bytes).reshape(64, 64, 3)
    reference = decode_resized(unit.payload[0].payload, 64, 64)
    assert np.array_equal(first, reference)
    print("batch pixels verified against the software decoder — "
          "bit-identical.")


if __name__ == "__main__":
    main()
