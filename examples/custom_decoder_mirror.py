#!/usr/bin/env python3
"""Pluggable decoder mirrors: preprocess *audio* on the same FPGA.

Section 3.1 of the paper: "the decoder in FPGA is pluggable, which
allows users to download relevant preprocessing mirrors to FPGA devices
for different applications (e.g., language models, video models and
speech models)".  This example:

1. runs the stock image-decoder mirror,
2. hot-swaps the board to the audio-spectrogram mirror and feeds it PCM,
3. registers a brand-new custom mirror (video-frame differencing) built
   from the same PipelineUnit toolkit, and runs that too.

Run:  python examples/custom_decoder_mirror.py
"""

import numpy as np

from repro.calib import DEFAULT_TESTBED
from repro.fpga import (AudioCmd, AudioSpectrogramMirror, CLB_COSTS,
                        DecodeCmd, FpgaDevice, ImageDecoderMirror,
                        PipelineUnit, create_mirror, register_mirror)
from repro.sim import Channel, Counter, Environment


# --------------------------------------------------------- a custom mirror
class VideoDiffMirror:
    """Frame-pair differencing for video models: deltas are cheap to
    learn from and tiny to ship.  Two stages: frame align + diff."""

    def __init__(self, env, testbed, diff_ways=2, name="video-diff"):
        self.env = env
        self.name = name
        self.device = None
        depth = testbed.fpga_queue_depth
        self.cmd_queue = Channel(env, capacity=depth, name=f"{name}.fifo")
        self._diff_q = Channel(env, capacity=depth, name=f"{name}.diff")
        self.finish_queue = Channel(env, capacity=float("inf"),
                                    name=f"{name}.finish")
        self.decoded = Counter(env, name=f"{name}.frames")
        self.align = PipelineUnit(
            env, f"{name}.align", ways=1,
            service_time=lambda c: c["pixels"] / 2.5e9,
            inbox=self.cmd_queue, outbox=self._diff_q,
            clb_cost_per_way=CLB_COSTS["parser"])
        self.diff = PipelineUnit(
            env, f"{name}.diff", ways=diff_ways,
            service_time=lambda c: c["pixels"] / 1.2e9,
            inbox=self._diff_q, outbox=self.finish_queue,
            transform=self._finish,
            clb_cost_per_way=CLB_COSTS["resizer"])
        self._units = [self.align, self.diff]

    def _finish(self, cmd):
        self.decoded.add()
        return cmd

    def clb_cost(self):
        return sum(u.clb_cost for u in self._units) + CLB_COSTS["dma"]

    def bind(self, device):
        self.device = device
        for unit in self._units:
            unit.start()

    def shutdown(self):
        self.device = None


def main() -> None:
    env = Environment()
    testbed = DEFAULT_TESTBED
    device = FpgaDevice(env, testbed)

    # --- 1. image mirror ---------------------------------------------------
    image = ImageDecoderMirror(env, testbed)
    device.load_mirror(image)
    print(f"loaded '{image.name}': {device.clb_used:,} CLBs")

    def drive_image(env):
        for i in range(50):
            yield from image.cmd_queue.put(DecodeCmd(
                cmd_id=i, source="dram", size_bytes=110_000,
                work_pixels=int(375 * 500 * 1.5), out_h=224, out_w=224,
                channels=3, dest_phy=0x4000_0000, dest_offset=0))
        for _ in range(50):
            yield from image.finish_queue.get()

    proc = env.process(drive_image(env))
    env.run(until=proc)
    print(f"  image decode: 50 JPEGs in {env.now * 1e3:.1f} ms "
          f"({50 / env.now:,.0f} img/s)")

    # --- 2. hot-swap to the audio mirror ------------------------------------
    audio = AudioSpectrogramMirror(env, testbed)
    device.load_mirror(audio)  # image mirror is unloaded automatically
    print(f"swapped to '{audio.name}': {device.clb_used:,} CLBs")
    t0 = env.now

    def drive_audio(env):
        for i in range(50):
            yield from audio.cmd_queue.put(AudioCmd(
                cmd_id=i, num_samples=16_000, frame_size=512,
                dest_phy=0x4000_0000, dest_offset=0))
        for _ in range(50):
            yield from audio.finish_queue.get()

    proc = env.process(drive_audio(env))
    env.run(until=proc)
    print(f"  audio spectra: 50 clips (1 s @ 16 kHz) in "
          f"{(env.now - t0) * 1e3:.1f} ms ({50 / (env.now - t0):,.0f} clips/s)")

    # --- 3. register and run a brand-new mirror ------------------------------
    register_mirror("video-diff", VideoDiffMirror)
    video = create_mirror("video-diff", env, testbed)
    device.load_mirror(video)
    print(f"registered + loaded custom '{video.name}': "
          f"{device.clb_used:,} CLBs")
    t0 = env.now

    def drive_video(env):
        for i in range(50):
            yield from video.cmd_queue.put(
                {"frame": i, "pixels": 1280 * 720})
        for _ in range(50):
            yield from video.finish_queue.get()

    proc = env.process(drive_video(env))
    env.run(until=proc)
    print(f"  video diffs: 50 x 720p frame pairs in "
          f"{(env.now - t0) * 1e3:.1f} ms "
          f"({50 / (env.now - t0):,.0f} frames/s)")


if __name__ == "__main__":
    main()
